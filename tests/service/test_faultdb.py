"""FaultDB: round-trips, fingerprint dedup, concurrency, csv parity."""

from __future__ import annotations

import threading

import pytest

import repro
from repro.core.engine import CampaignEngine, ParallelExecutor
from repro.core.outcomes import Outcome, OutcomeRecord
from repro.core.params import PermanentParams
from repro.core.campaign import PermanentResult
from repro.core.result_store import ResultStore
from repro.core.store import CampaignStore
from repro.errors import ParamError, ReproError
from repro.service import FaultDB, config_from_dict, config_to_dict, decode_overrides
from repro.service.faultdb import fault_fingerprint

from tests.service.conftest import make_config


@pytest.fixture
def db(tmp_path):
    with FaultDB(tmp_path / "faults.sqlite") as handle:
        yield handle


def test_store_adapter_satisfies_result_store_protocol(db):
    db.create_campaign("c", make_config())
    assert isinstance(db.campaign_store("c"), ResultStore)
    assert isinstance(CampaignStore("unused"), ResultStore)


def test_unknown_campaign_rejected(db):
    with pytest.raises(ReproError, match="no campaign"):
        db.campaign_store("missing")


def test_transient_round_trip_is_lossless(db):
    db.create_campaign("c", make_config())
    result = repro.run_campaign(make_config(), store=db.campaign_store("c"))
    for index, item in enumerate(result.results):
        assert db.load_transient_outcome("c", index) == item
    assert db.completed_injections("c") == list(range(len(result.results)))


def test_permanent_round_trip_is_lossless(db):
    db.create_campaign("c", make_config())
    stored = PermanentResult(
        params=PermanentParams(sm_id=2, lane_id=7, bit_mask=0x10, opcode_id=3),
        opcode="FADD",
        weight=0.25,
        activations=12,
        outcome=OutcomeRecord(Outcome.SDC, "output corrupted", True),
        wall_time=0.5,
    )
    store = db.campaign_store("c")
    store.save_permanent_injection(0, stored)
    assert store.load_permanent_injection(0) == stored
    assert store.completed_permanent_injections() == [0]


def test_results_csv_export_matches_directory_store(db, reference):
    _, reference_bytes = reference
    db.create_campaign("c", make_config())
    repro.run_campaign(make_config(), store=db.campaign_store("c"))
    assert db.export_results_csv("c").encode() == reference_bytes
    assert db.load_artifact("c", "results.csv") == reference_bytes


def test_parallel_run_export_matches_directory_store(db, reference):
    _, reference_bytes = reference
    db.create_campaign("c", make_config())
    repro.run_campaign(
        make_config(),
        store=db.campaign_store("c"),
        executor=ParallelExecutor(max_workers=2),
    )
    assert db.export_results_csv("c").encode() == reference_bytes


def test_resumed_run_export_matches_directory_store(db, reference):
    result, reference_bytes = reference
    db.create_campaign("c", make_config())
    store = db.campaign_store("c")
    # Pre-checkpoint the first half, as an interrupted campaign would have.
    for index in range(2):
        store.save_injection(index, result.results[index])
    repro.run_campaign(make_config(), store=store)
    assert db.export_results_csv("c").encode() == reference_bytes


def test_fingerprint_dedup_is_one_indexed_query(db, reference):
    result, _ = reference
    config = make_config()
    db.create_campaign("c", config)
    fingerprint = fault_fingerprint(
        config.workload, "transient", result.results[0].params, config
    )
    assert not db.has_executed(fingerprint)
    db.save_transient_outcome("c", 0, result.results[0], config=config)
    assert db.has_executed(fingerprint)
    found = db.find_outcome(fingerprint)
    assert found is not None and found["campaign_id"] == "c"


def test_dedupe_campaign_copies_prior_outcomes(db, reference):
    _, reference_bytes = reference
    db.create_campaign("first", make_config())
    repro.run_campaign(make_config(), store=db.campaign_store("first"))

    db.create_campaign("second", make_config())
    config = make_config()
    engine = CampaignEngine(config.workload, config, store=db.campaign_store("second"))
    db.insert_sites("second", engine.plan_transient())
    copied = db.dedupe_campaign("second")

    assert copied == len(engine.plan_transient())  # identical campaign: all hits
    assert db.export_results_csv("second").encode() == reference_bytes
    donor = db.find_outcome(db.site_fingerprints("second")[0])
    assert donor["deduped_from"] == ""  # find_outcome prefers the original


def test_fingerprint_changes_with_outcome_determining_knobs(reference):
    result, _ = reference
    params = result.results[0].params
    base = make_config()
    assert fault_fingerprint("a", "transient", params, base) != fault_fingerprint(
        "b", "transient", params, base
    )
    assert fault_fingerprint(
        "a", "transient", params, base
    ) != fault_fingerprint("a", "permanent", params, base)
    bumped = base.with_overrides(hang_budget_factor=99)
    assert fault_fingerprint("a", "transient", params, base) != fault_fingerprint(
        "a", "transient", params, bumped
    )
    # Speed-only knobs are excluded: results.csv is byte-identical across
    # them, so they cannot change the outcome.
    faster = base.with_overrides(fast_forward=False)
    assert fault_fingerprint("a", "transient", params, base) == fault_fingerprint(
        "a", "transient", params, faster
    )


def test_concurrent_writers_from_threads(db, reference):
    result, _ = reference
    config = make_config()
    campaign_ids = [f"c{n}" for n in range(4)]
    for campaign_id in campaign_ids:
        db.create_campaign(campaign_id, config)
    errors = []

    def write(campaign_id):
        try:
            for index, item in enumerate(result.results):
                db.save_transient_outcome(campaign_id, index, item, config=config)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [
        threading.Thread(target=write, args=(campaign_id,))
        for campaign_id in campaign_ids
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    for campaign_id in campaign_ids:
        assert db.completed_injections(campaign_id) == list(
            range(len(result.results))
        )


def test_concurrent_processes_share_one_database(db, tmp_path, reference):
    result, _ = reference
    import multiprocessing

    config = make_config()
    db.create_campaign("shared", config)
    db.save_transient_outcome("shared", 0, result.results[0], config=config)
    procs = [
        multiprocessing.Process(
            target=_process_writer, args=(str(db.path), "shared", 1 + n)
        )
        for n in range(2)
    ]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join()
        assert proc.exitcode == 0
    assert db.completed_injections("shared") == [0, 1, 2]


def _process_writer(db_path: str, campaign_id: str, index: int) -> None:
    with FaultDB(db_path) as db:
        donor = db.load_transient_outcome(campaign_id, 0)
        db.save_transient_outcome(campaign_id, index, donor)


def test_campaign_lifecycle_rows(db):
    db.create_campaign("c", make_config())
    row = db.campaign_row("c")
    assert row["state"] == "pending" and row["workload"] == "360.ilbdc"
    db.set_campaign_state("c", "failed", error="boom")
    row = db.campaign_row("c")
    assert (row["state"], row["error"]) == ("failed", "boom")
    assert [c["campaign_id"] for c in db.list_campaigns()] == ["c"]


def test_replay_cache_dir_is_db_adjacent(db):
    assert db.replay_cache_dir() == db.path.with_name(db.path.name + ".replay")


# -- lease clock vs wall-clock steps -------------------------------------------


def test_forward_ntp_step_does_not_mass_expire_live_leases(db, monkeypatch):
    """Regression: lease math used raw ``time.time()``, so a forward NTP
    step instantly expired every live lease and handed units to a second
    worker while the first was still running them."""
    import time as time_mod

    db.create_campaign("c", make_config())
    db.insert_units("c", [[0, 1]])
    assert db.lease_unit("c", "w0", lease_seconds=30.0) is not None

    real = time_mod.time()
    monkeypatch.setattr(time_mod, "time", lambda: real + 3600.0)
    assert db.heartbeat_unit("c", 0, "w0", lease_seconds=30.0)
    assert not db.has_runnable_unit("c")
    assert db.lease_unit("c", "thief", lease_seconds=30.0) is None


def test_backward_ntp_step_does_not_immortalize_dead_leases(db, monkeypatch):
    """The mirror image: a backward step used to push ``now`` behind every
    ``lease_expires``, so a dead worker's unit was never requeued."""
    import time as time_mod

    db.create_campaign("c", make_config())
    db.insert_units("c", [[0, 1]])
    assert db.lease_unit("c", "doomed", lease_seconds=0.01) is not None

    real = time_mod.time()
    monkeypatch.setattr(time_mod, "time", lambda: real - 3600.0)
    time_mod.sleep(0.05)  # the monotonic clock, not the wall clock, decides
    assert db.has_runnable_unit("c")
    assert db.lease_unit("c", "heir", lease_seconds=30.0) == (0, [0, 1])


# -- the config codec ----------------------------------------------------------


def test_codec_round_trips_default_and_rich_configs():
    from repro.core.adaptive import SamplingPlan, StoppingRule
    from repro.core.resilience import RetryPolicy
    from repro.runner.sandbox import SandboxConfig

    rich = repro.CampaignConfig(
        workload="360.ilbdc",
        num_transient=7,
        seed=9,
        hang_budget_factor=12,
        fast_forward=False,
        snapshot=True,
        replay_cache="/tmp/replay-cache",
        sandbox=SandboxConfig(seed=4, num_sms=2, extra_env={"X": "1"}),
        retry=RetryPolicy(max_attempts=5, task_timeout=1.5, on_failure="raise"),
        stopping=StoppingRule(target_outcome=Outcome.DUE, half_width=0.02),
        sampling=SamplingPlan(mode="stratified", batch_size=10),
    )
    for config in (repro.CampaignConfig(workload="360.ilbdc"), rich):
        assert config_from_dict(config_to_dict(config)) == config


def test_codec_rejects_unknown_keys_and_bad_values():
    with pytest.raises(ParamError, match="unknown campaign config key"):
        config_from_dict({"num_transiet": 5})
    with pytest.raises(ParamError, match="bad campaign config value"):
        config_from_dict({"group": "G_BOGUS"})


def test_decode_overrides_passes_only_submitted_keys():
    overrides = decode_overrides({"num_transient": 7, "seed": 0})
    assert overrides == {"num_transient": 7, "seed": 0}
    config = repro.CampaignConfig(workload="360.ilbdc").with_overrides(**overrides)
    assert (config.num_transient, config.workload) == (7, "360.ilbdc")
