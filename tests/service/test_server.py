"""``repro serve``: endpoints, multi-tenant submissions, acceptance parity."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

import repro
from repro.core.store import CampaignStore
from repro.service import FaultService

from tests.service.conftest import make_config


@pytest.fixture
def service(tmp_path):
    handle = FaultService(
        tmp_path / "faults.sqlite",
        port=0,
        default_workers=0,  # inline coordinator: fast, deterministic tests
        lease_seconds=10.0,
    )
    handle.start()
    yield handle
    handle.shutdown()


def _url(service, path):
    host, port = service.address
    return f"http://{host}:{port}{path}"


def _get(service, path):
    with urllib.request.urlopen(_url(service, path)) as response:
        return response.status, response.read()


def _post(service, path, payload):
    request = urllib.request.Request(
        _url(service, path),
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _submit(service, **payload):
    status, body = _post(service, "/campaigns", payload)
    assert status == 202
    return body["campaign_id"]


def test_healthz_metrics_and_workloads(service):
    status, body = _get(service, "/healthz")
    assert (status, json.loads(body)) == (200, {"ok": True})
    status, body = _get(service, "/workloads")
    assert status == 200 and "360.ilbdc" in json.loads(body)["workloads"]
    status, body = _get(service, "/metrics")
    assert status == 200


def test_submit_runs_to_completion_with_live_status(service, reference):
    _, reference_bytes = reference
    campaign_id = _submit(
        service,
        workload="360.ilbdc",
        config={"num_transient": 4, "seed": 3},
    )
    service.join_campaign(campaign_id, timeout=300)

    status, body = _get(service, f"/campaigns/{campaign_id}")
    doc = json.loads(body)
    assert status == 200
    assert doc["state"] == "done"
    assert (doc["completed"], doc["total"]) == (4, 4)
    assert doc["tally"]["n"] == 4
    assert set(doc["tally"]["fractions"]) == {"SDC", "DUE", "Masked"}

    status, body = _get(service, f"/campaigns/{campaign_id}/results")
    assert status == 200
    assert body == reference_bytes

    status, body = _get(service, "/campaigns")
    listed = json.loads(body)["campaigns"]
    assert [c["campaign_id"] for c in listed] == [campaign_id]


def test_results_blocked_until_done(service):
    # A campaign row with no coordinator stays pending forever: the 409
    # path without a race.
    service.db.create_campaign("stuck", make_config())
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(service, "/campaigns/stuck/results")
    assert excinfo.value.code == 409


def test_submission_validation(service):
    for payload, fragment in [
        ({}, "workload"),
        ({"workload": "no.such"}, "unknown workload"),
        (
            {"workload": "360.ilbdc", "kind": "permanent"},
            "transient campaigns only",
        ),
        (
            {"workload": "360.ilbdc", "config": {"bogus_knob": 1}},
            "unknown campaign config key",
        ),
        ({"workload": "360.ilbdc", "kind": "exotic"}, "unknown campaign kind"),
    ]:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(service, "/campaigns", payload)
        assert excinfo.value.code == 400
        assert fragment in json.loads(excinfo.value.read())["error"]


def test_unknown_routes_are_404(service):
    for path in ["/nope", "/campaigns/missing"]:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(service, path)
        assert excinfo.value.code == 404


@pytest.mark.slow
def test_two_concurrent_campaigns_with_workers_each_reach_parity(tmp_path):
    """The acceptance scenario: two tenants, one FaultDB, 2 workers each."""
    service = FaultService(
        tmp_path / "faults.sqlite", port=0, default_workers=2, lease_seconds=10.0
    )
    service.start()
    try:
        first = _submit(
            service,
            workload="360.ilbdc",
            config={"num_transient": 6, "seed": 11},
            workers=2,
        )
        second = _submit(
            service,
            workload="360.ilbdc",
            config={"num_transient": 6, "seed": 12},
            workers=2,
        )
        service.join_campaign(first, timeout=600)
        service.join_campaign(second, timeout=600)

        for campaign_id, seed in [(first, 11), (second, 12)]:
            status, body = _get(service, f"/campaigns/{campaign_id}")
            doc = json.loads(body)
            assert doc["state"] == "done", doc
            assert doc["completed"] == 6

            root = tmp_path / f"reference-{seed}"
            repro.run_campaign(
                make_config(num_transient=6, seed=seed),
                store=CampaignStore(root),
            )
            status, body = _get(service, f"/campaigns/{campaign_id}/results")
            assert status == 200
            assert body == (root / "results.csv").read_bytes()

        # One deduplicated FaultDB: both campaigns' outcomes live in it,
        # correctly keyed, with no cross-campaign bleed.
        assert len(service.db.completed_injections(first)) == 6
        assert len(service.db.completed_injections(second)) == 6
    finally:
        service.shutdown()
