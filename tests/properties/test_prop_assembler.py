"""Property tests: assembler/disassembler/encoder round-trips on random programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sass import assemble, decode_module, disassemble, encode_module

_REG = st.integers(0, 60).map(lambda i: f"R{i}")
_PRED = st.integers(0, 6).map(lambda i: f"P{i}")
_IMM = st.integers(-(2**31), 2**32 - 1).map(str)


@st.composite
def alu_line(draw):
    opcode = draw(st.sampled_from(["IADD", "IMUL", "LOP.AND", "LOP.XOR", "SHL",
                                   "FADD", "FMUL", "IMNMX.MIN"]))
    dest = draw(_REG)
    a = draw(_REG)
    b = draw(st.one_of(_REG, _IMM))
    guard = draw(st.sampled_from(["", "@P0 ", "@!P1 "]))
    return f"{guard}{opcode} {dest}, {a}, {b} ;"


@st.composite
def setp_line(draw):
    cmp = draw(st.sampled_from(["LT", "LE", "GT", "GE", "EQ", "NE"]))
    mods = draw(st.sampled_from(["", ".U32"]))
    return f"ISETP.{cmp}{mods} {draw(_PRED)}, {draw(_REG)}, {draw(st.one_of(_REG, _IMM))} ;"


@st.composite
def mem_line(draw):
    reg = draw(_REG)
    base = draw(_REG)
    offset = draw(st.integers(-64, 64)) * 4
    suffix = f"+{hex(offset)}" if offset > 0 else (f"-{hex(-offset)}" if offset < 0 else "")
    if draw(st.booleans()):
        return f"LDG.32 {reg}, [{base}{suffix}] ;"
    return f"STG.32 [{base}{suffix}], {reg} ;"


@st.composite
def program(draw):
    lines = draw(
        st.lists(st.one_of(alu_line(), setp_line(), mem_line()), min_size=1,
                 max_size=25)
    )
    body = "\n".join(f"    {line}" for line in lines)
    return f".kernel fuzz\n.params 2\n{body}\n    EXIT ;\n"


class TestRoundTrips:
    @given(program())
    @settings(max_examples=80)
    def test_text_roundtrip_is_fixed_point(self, text):
        module = assemble(text)
        rendered = disassemble(module)
        assert disassemble(assemble(rendered)) == rendered

    @given(program())
    @settings(max_examples=80)
    def test_binary_roundtrip_preserves_semantics(self, text):
        module = assemble(text)
        decoded = decode_module(encode_module(module))
        assert disassemble(decoded) == disassemble(module)

    @given(program())
    @settings(max_examples=40)
    def test_instruction_count_stable(self, text):
        module = assemble(text)
        again = assemble(disassemble(module))
        assert len(again.get("fuzz")) == len(module.get("fuzz"))
