"""Property tests: allocator invariants under random alloc/free sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.mem.allocator import Allocator

_HEAP = 1 << 16


@st.composite
def alloc_free_script(draw):
    """A random interleaving of alloc(size) and free(handle index) ops."""
    ops = []
    live = 0
    for _ in range(draw(st.integers(1, 40))):
        if live and draw(st.booleans()):
            ops.append(("free", draw(st.integers(0, live - 1))))
            live -= 1
        else:
            ops.append(("alloc", draw(st.integers(1, 2048))))
            live += 1
    return ops


class TestAllocatorProperties:
    @given(alloc_free_script())
    @settings(max_examples=60)
    def test_no_overlap_and_conservation(self, script):
        allocator = Allocator(_HEAP)
        total = allocator.free_bytes()
        live: list[int] = []
        for op, arg in script:
            if op == "alloc":
                try:
                    live.append(allocator.alloc(arg))
                except AllocationError:
                    continue  # heap exhausted/fragmented: acceptable
            else:
                if live:
                    allocator.free(live.pop(arg % len(live)))
            # Invariant 1: live allocations never overlap.
            spans = sorted(
                allocator.allocation_of(address) for address in live
            )
            for (s1, n1), (s2, _) in zip(spans, spans[1:]):
                assert s1 + n1 <= s2
            # Invariant 2: free + allocated == heap capacity.
            assert (
                allocator.free_bytes() + allocator.allocated_bytes() == total
            )

    @given(alloc_free_script())
    @settings(max_examples=30)
    def test_full_free_restores_capacity(self, script):
        allocator = Allocator(_HEAP)
        capacity = allocator.free_bytes()
        live = []
        for op, arg in script:
            if op == "alloc":
                try:
                    live.append(allocator.alloc(arg))
                except AllocationError:
                    pass
            elif live:
                allocator.free(live.pop(arg % len(live)))
        for address in live:
            allocator.free(address)
        assert allocator.free_bytes() == capacity
        # After full free the heap coalesces back to one max-size block.
        assert allocator.alloc(capacity) > 0

    @given(st.lists(st.integers(1, 512), min_size=1, max_size=20))
    def test_addresses_aligned_and_nonzero(self, sizes):
        allocator = Allocator(_HEAP)
        for size in sizes:
            address = allocator.alloc(size)
            assert address % 256 == 0
            assert address != 0
