"""Property tests: profile/injection consistency.

The load-bearing contract between the profiler and the injector: *every*
index below a dynamic kernel's profiled group count maps to a real dynamic
instruction, and the injector deterministically reaches it.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup
from repro.core.injector import TransientInjectorTool
from repro.core.params import TransientParams
from repro.core.profiler import ProfilerTool, ProfilingMode
from repro.runner.app import AppContext, Application
from repro.runner.sandbox import SandboxConfig, run_app

_KERNEL = """
.kernel vary
.params 2
    S2R R1, SR_TID.X ;
    S2R R2, SR_CTAID.X ;
    S2R R3, SR_NTID.X ;
    IMAD R4, R2, R3, R1 ;
    MOV R5, c[0x0][0x4] ;
    LOP.AND R6, R4, 7 ;
    MOV R7, RZ ;
    PBK DONE ;
LOOP:
    ISETP.GE P0, R7, R6 ;
@P0 BRK ;
    IADD R5, R5, R4 ;
    IADD R7, R7, 1 ;
    BRA LOOP ;
DONE:
    MOV R8, c[0x0][0x0] ;
    ISCADD R9, R4, R8, 2 ;
    STG.32 [R9], R5 ;
    EXIT ;
"""


class VaryApp(Application):
    """Divergent loops + arbitrary grid/block so counting is non-trivial."""

    name = "vary"

    def __init__(self, grid: int, block: int, launches: int):
        self.grid = grid
        self.block = block
        self.launches = launches

    def run(self, ctx: AppContext) -> None:
        module = ctx.cuda.load_module(_KERNEL)
        func = ctx.cuda.get_function(module, "vary")
        total = self.grid * self.block
        out = ctx.cuda.alloc(total, np.uint32)
        for _ in range(self.launches):
            ctx.cuda.launch(func, self.grid, self.block, out, 100)
        ctx.write_file("out", out.to_host().tobytes())


@st.composite
def scenario(draw):
    grid = draw(st.integers(1, 3))
    block = draw(st.integers(1, 70))
    launches = draw(st.integers(1, 3))
    return grid, block, launches


class TestProfileInjectionContract:
    @given(scenario(), st.data())
    @settings(max_examples=15, deadline=None)
    def test_every_profiled_index_is_injectable(self, shape, data):
        grid, block, launches = shape
        app = VaryApp(grid, block, launches)
        profiler = ProfilerTool(ProfilingMode.EXACT)
        run_app(app, preload=[profiler])
        profile = profiler.profile
        group = InstructionGroup.G_GP

        # Pick any dynamic kernel instance and any index inside its count.
        kernel_profile = data.draw(
            st.sampled_from(profile.kernels), label="dynamic kernel"
        )
        group_count = kernel_profile.group_count(group)
        index = data.draw(
            st.integers(0, group_count - 1), label="instruction index"
        )
        params = TransientParams(
            group=group,
            model=BitFlipModel.FLIP_SINGLE_BIT,
            kernel_name=kernel_profile.kernel_name,
            kernel_count=kernel_profile.invocation,
            instruction_count=index,
            dest_reg_selector=data.draw(
                st.floats(0, 1, exclude_max=True), label="selector"
            ),
            bit_pattern_value=data.draw(
                st.floats(0, 1, exclude_max=True), label="bit value"
            ),
        )
        injector = TransientInjectorTool(params)
        artifacts = run_app(
            app, preload=[injector],
            config=SandboxConfig(instruction_budget=2_000_000),
        )
        # The contract: a profiled index always reaches a real instruction.
        assert injector.record.injected
        # And the run terminates with one of the legal outcomes (no crash of
        # the simulator itself).
        assert not artifacts.crashed, artifacts.crash_reason

    @given(scenario())
    @settings(max_examples=10, deadline=None)
    def test_index_past_group_count_never_injects(self, shape):
        grid, block, launches = shape
        app = VaryApp(grid, block, launches)
        profiler = ProfilerTool(ProfilingMode.EXACT)
        run_app(app, preload=[profiler])
        kernel_profile = profiler.profile.kernels[-1]
        group_count = kernel_profile.group_count(InstructionGroup.G_GP)
        params = TransientParams(
            group=InstructionGroup.G_GP,
            model=BitFlipModel.FLIP_SINGLE_BIT,
            kernel_name=kernel_profile.kernel_name,
            kernel_count=kernel_profile.invocation,
            instruction_count=group_count,  # one past the end
            dest_reg_selector=0.0,
            bit_pattern_value=0.0,
        )
        injector = TransientInjectorTool(params)
        run_app(app, preload=[injector])
        assert not injector.record.injected
