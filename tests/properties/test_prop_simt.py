"""Property tests: SIMT reconvergence and execution-model invariants.

Random structured programs (nested if/else over random lane predicates,
loops with random per-lane trip counts) are generated with the kernel
builder and checked against a straight-line numpy oracle.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import Device
from repro.kbuild import KernelBuilder
from repro.sass import assemble


def _run(kb: KernelBuilder, params):
    device = Device(num_sms=2, global_mem_bytes=1 << 20)
    out = device.malloc(4 * 32)
    kernel = assemble(kb.finish()).get(kb.name)
    device.launch(kernel, 1, 32, [out] + params)
    return np.frombuffer(device.global_mem.read_bytes(out, 4 * 32), np.uint32)


class TestReconvergence:
    @given(
        st.integers(0, 32), st.integers(0, 32),
        st.integers(1, 1000), st.integers(1, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_nested_if_matches_oracle(self, t_outer, t_inner, add_a, add_b):
        lanes = np.arange(32)
        kb = KernelBuilder("fuzz_if", num_params=1)
        i = kb.tid_x()
        acc = kb.mov(kb.const_u32(0))
        outer = kb.isetp("LT", i, t_outer)
        with kb.if_then(outer):
            kb.assign(acc, kb.iadd(acc, add_a))
            inner = kb.isetp("LT", i, t_inner)
            with kb.if_then(inner):
                kb.assign(acc, kb.iadd(acc, add_b))
        kb.assign(acc, kb.iadd(acc, 1))  # post-reconvergence: all lanes
        kb.stg(kb.index(kb.param(0), i, 4), acc)
        out = _run(kb, [])

        oracle = np.zeros(32, dtype=np.uint64)
        oracle[lanes < t_outer] += add_a
        oracle[(lanes < t_outer) & (lanes < t_inner)] += add_b
        oracle += 1
        assert (out == (oracle & 0xFFFFFFFF)).all()

    @given(st.integers(1, 7), st.integers(0, 7))
    @settings(max_examples=30, deadline=None)
    def test_loop_trip_counts_match_oracle(self, modulus, offset):
        lanes = np.arange(32)
        kb = KernelBuilder("fuzz_loop", num_params=1)
        i = kb.tid_x()
        # target trip count = (lane + offset) % modulus
        target = kb.iadd(i, offset)
        # modulo via repeated conditional subtract is overkill; use AND for
        # power-of-two or a loop bound parameterised by i directly.
        trips = kb.land(target, modulus) if False else target
        count = kb.mov(kb.const_u32(0))
        limit = kb.land(trips, 7)  # (lane+offset) & 7
        with kb.loop() as loop:
            done = kb.isetp("GE", count, limit)
            loop.break_if(done)
            kb.assign(count, kb.iadd(count, 1))
        kb.stg(kb.index(kb.param(0), i, 4), count)
        out = _run(kb, [])
        assert (out == ((lanes + offset) & 7)).all()

    @given(st.integers(0, 31))
    @settings(max_examples=20, deadline=None)
    def test_exit_threshold(self, threshold):
        kb = KernelBuilder("fuzz_exit", num_params=1)
        i = kb.tid_x()
        addr = kb.index(kb.param(0), i, 4)
        kb.stg(addr, kb.const_u32(1))
        kb.exit_if(kb.isetp("GE", i, threshold))
        kb.stg(addr, kb.const_u32(2))
        out = _run(kb, [])
        lanes = np.arange(32)
        assert (out == np.where(lanes < threshold, 2, 1)).all()


class TestExecutionInvariants:
    @given(st.integers(1, 64), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_instruction_count_scales_with_threads(self, block, grid):
        """Warp-instruction count depends only on warp count for a
        divergence-free kernel."""
        text = ".kernel k\n    NOP ;\n    NOP ;\n    EXIT ;"
        kernel = assemble(text).get("k")
        device = Device(num_sms=2, global_mem_bytes=1 << 20)
        device.launch(kernel, grid, block, [])
        warps = grid * ((block + 31) // 32)
        assert device.instructions_executed == warps * 3

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_mov_preserves_arbitrary_bits(self, value):
        kb = KernelBuilder("fuzz_mov", num_params=1)
        i = kb.tid_x()
        kb.stg(kb.index(kb.param(0), i, 4), kb.const_u32(value))
        out = _run(kb, [])
        assert (out == value).all()
