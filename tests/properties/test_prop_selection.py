"""Property tests: site selection over randomly generated profiles."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup, in_group
from repro.core.profile_data import KernelProfile, ProgramProfile
from repro.core.site_selection import select_transient_site
from repro.sass.isa import OPCODES_BY_NAME

_GP_OPCODES = ["FADD", "IADD", "IMAD", "LDG", "MOV", "MUFU", "DADD"]
_OTHER_OPCODES = ["STG", "BRA", "EXIT", "FSETP"]


@st.composite
def profiles(draw):
    profile = ProgramProfile()
    invocations: dict[str, int] = {}
    for _ in range(draw(st.integers(1, 8))):
        name = draw(st.sampled_from(["alpha", "beta", "gamma"]))
        invocation = invocations.get(name, 0)
        invocations[name] = invocation + 1
        counts = {}
        for opcode in draw(
            st.lists(st.sampled_from(_GP_OPCODES + _OTHER_OPCODES),
                     min_size=1, max_size=6, unique=True)
        ):
            counts[opcode] = draw(st.integers(1, 500))
        profile.append(KernelProfile(name, invocation, counts))
    return profile


class TestSelectionProperties:
    @given(profiles(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60)
    def test_site_is_consistent_with_profile(self, profile, seed):
        group = InstructionGroup.G_GP
        assume(profile.total_count(group) > 0)
        rng = np.random.default_rng(seed)
        site = select_transient_site(profile, group, BitFlipModel.FLIP_SINGLE_BIT, rng)
        # The selected (kernel, invocation) exists in the profile...
        matching = [
            kp for kp in profile.kernels
            if kp.kernel_name == site.kernel_name
            and kp.invocation == site.kernel_count
        ]
        assert len(matching) == 1
        # ...and the instruction index is within that instance's group count.
        assert 0 <= site.instruction_count < matching[0].group_count(group)

    @given(profiles(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40)
    def test_selected_group_population_nonempty(self, profile, seed):
        for group in (InstructionGroup.G_FP32, InstructionGroup.G_LD):
            if profile.total_count(group) == 0:
                continue
            rng = np.random.default_rng(seed)
            site = select_transient_site(profile, group,
                                         BitFlipModel.RANDOM_VALUE, rng)
            kp = next(
                k for k in profile.kernels
                if k.kernel_name == site.kernel_name
                and k.invocation == site.kernel_count
            )
            group_opcodes = [
                op for op in kp.counts if in_group(OPCODES_BY_NAME[op], group)
            ]
            assert group_opcodes  # the chosen instance really has the group

    @given(profiles())
    @settings(max_examples=40)
    def test_group_counts_are_consistent_partitions(self, profile):
        base_groups = (
            InstructionGroup.G_FP64, InstructionGroup.G_FP32,
            InstructionGroup.G_LD, InstructionGroup.G_PR,
            InstructionGroup.G_NODEST, InstructionGroup.G_OTHERS,
        )
        total = profile.total_count()
        assert sum(profile.total_count(g) for g in base_groups) == total
        assert (
            profile.total_count(InstructionGroup.G_GPPR)
            == total - profile.total_count(InstructionGroup.G_NODEST)
        )
        assert (
            profile.total_count(InstructionGroup.G_GP)
            == profile.total_count(InstructionGroup.G_GPPR)
            - profile.total_count(InstructionGroup.G_PR)
        )
