"""Property tests: bit helpers and Table II mask invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.bitflip import BitFlipModel, apply_mask, compute_mask
from repro.utils.bits import (
    MASK32,
    bit_field_extract,
    bit_field_insert,
    bits_to_f32,
    bits_to_f64,
    f32_to_bits,
    f64_to_bits,
    sign_extend,
    to_i32,
    to_u32,
)

u32 = st.integers(min_value=0, max_value=MASK32)
unit = st.floats(min_value=0.0, max_value=1.0, exclude_max=True,
                 allow_nan=False, allow_infinity=False)


class TestBitHelpers:
    @given(u32)
    def test_i32_u32_roundtrip(self, value):
        assert to_u32(to_i32(value)) == value

    @given(u32)
    def test_f32_bits_roundtrip(self, bits):
        # NaN payloads may not round-trip; skip NaNs.
        value = bits_to_f32(bits)
        if value == value:
            assert f32_to_bits(value) == bits

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_f64_bits_roundtrip(self, bits):
        value = bits_to_f64(bits)
        if value == value:
            assert f64_to_bits(value) == bits

    @given(u32, st.integers(0, 31), st.integers(0, 32))
    def test_bfe_result_fits_width(self, value, pos, width):
        extracted = bit_field_extract(value, pos, width)
        assert extracted < (1 << max(width, 1)) or width == 0

    @given(u32, u32, st.integers(0, 31), st.integers(0, 16))
    def test_bfi_then_bfe_recovers(self, base, insert, pos, width):
        if pos + width > 32:
            width = 32 - pos
        inserted = bit_field_insert(base, insert, pos, width)
        if width:
            assert bit_field_extract(inserted, pos, width) == insert & (
                (1 << width) - 1
            )

    @given(st.integers(0, MASK32), st.integers(1, 32))
    def test_sign_extend_idempotent_on_mask(self, value, bits):
        extended = sign_extend(value, bits)
        assert sign_extend(extended, bits) == extended


class TestMaskProperties:
    @given(unit, u32)
    def test_masks_are_32_bit(self, value, old):
        for model in BitFlipModel:
            assert 0 <= compute_mask(model, value, old) <= MASK32

    @given(unit, u32)
    def test_single_bit_flips_exactly_one(self, value, old):
        corrupted = apply_mask(BitFlipModel.FLIP_SINGLE_BIT, value, old)
        assert bin(corrupted ^ old).count("1") == 1

    @given(unit, u32)
    def test_two_bits_flip_one_or_two_adjacent(self, value, old):
        mask = compute_mask(BitFlipModel.FLIP_TWO_BITS, value, old)
        # The top shift (31*value = 30) keeps both bits in-word; count is 2.
        assert bin(mask).count("1") in (1, 2)
        # Bits are adjacent when two are set.
        if bin(mask).count("1") == 2:
            low = mask & -mask
            assert mask == low | (low << 1)

    @given(unit, u32)
    def test_zero_value_always_zeroes(self, value, old):
        assert apply_mask(BitFlipModel.ZERO_VALUE, value, old) == 0

    @given(unit, u32)
    def test_injection_is_involutory(self, value, old):
        """XOR masks are self-inverse: applying twice restores the value."""
        for model in (BitFlipModel.FLIP_SINGLE_BIT, BitFlipModel.FLIP_TWO_BITS,
                      BitFlipModel.RANDOM_VALUE):
            mask = compute_mask(model, value, old)
            assert (old ^ mask) ^ mask == old

    @given(unit)
    def test_mask_independent_of_old_value_except_zero_model(self, value):
        for model in (BitFlipModel.FLIP_SINGLE_BIT, BitFlipModel.FLIP_TWO_BITS,
                      BitFlipModel.RANDOM_VALUE):
            assert compute_mask(model, value, 0) == compute_mask(model, value, MASK32)
