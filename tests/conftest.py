"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import Device
from repro.sass import assemble


@pytest.fixture
def device() -> Device:
    """A small simulated GPU suitable for unit tests."""
    return Device(num_sms=4, global_mem_bytes=4 * 1024 * 1024)


def run_kernel(
    device: Device,
    text: str,
    kernel_name: str,
    grid,
    block,
    params: list[int],
    hooks=None,
):
    """Assemble and launch one kernel on ``device``."""
    kernel = assemble(text).get(kernel_name)
    device.launch(kernel, grid, block, params, hooks=hooks)
    return kernel


def read_f32(device: Device, address: int, count: int) -> np.ndarray:
    return np.frombuffer(
        device.global_mem.read_bytes(address, 4 * count), dtype=np.float32
    )


def read_u32(device: Device, address: int, count: int) -> np.ndarray:
    return np.frombuffer(
        device.global_mem.read_bytes(address, 4 * count), dtype=np.uint32
    )


def write_f32(device: Device, address: int, values: np.ndarray) -> None:
    device.global_mem.write_bytes(address, values.astype(np.float32).tobytes())


def write_u32(device: Device, address: int, values: np.ndarray) -> None:
    device.global_mem.write_bytes(address, values.astype(np.uint32).tobytes())
