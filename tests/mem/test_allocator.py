"""Unit tests for the device memory allocator."""

import pytest

from repro.errors import AllocationError
from repro.mem.allocator import Allocator


class TestAlloc:
    def test_never_returns_null(self):
        allocator = Allocator(1 << 20)
        assert allocator.alloc(16) != 0

    def test_alignment(self):
        allocator = Allocator(1 << 20)
        for _ in range(5):
            assert allocator.alloc(100) % 256 == 0

    def test_distinct_allocations_disjoint(self):
        allocator = Allocator(1 << 20)
        a = allocator.alloc(1000)
        b = allocator.alloc(1000)
        assert abs(a - b) >= 1024

    def test_zero_size_rejected(self):
        allocator = Allocator(1 << 20)
        with pytest.raises(AllocationError):
            allocator.alloc(0)

    def test_out_of_memory(self):
        allocator = Allocator(4096)
        with pytest.raises(AllocationError, match="out of device memory"):
            allocator.alloc(1 << 20)

    def test_exhaustion_then_free_recovers(self):
        allocator = Allocator(8192)
        block = allocator.alloc(4096)
        with pytest.raises(AllocationError):
            allocator.alloc(4096)
        allocator.free(block)
        assert allocator.alloc(4096) == block


class TestFree:
    def test_double_free_rejected(self):
        allocator = Allocator(1 << 20)
        block = allocator.alloc(64)
        allocator.free(block)
        with pytest.raises(AllocationError, match="unallocated"):
            allocator.free(block)

    def test_free_unknown_rejected(self):
        allocator = Allocator(1 << 20)
        with pytest.raises(AllocationError):
            allocator.free(0xDEAD00)

    def test_coalescing(self):
        allocator = Allocator(256 * 5)
        blocks = [allocator.alloc(256) for _ in range(4)]
        for block in blocks:
            allocator.free(block)
        # After coalescing, one allocation can span the whole region again.
        assert allocator.alloc(1024) == blocks[0]


class TestQueries:
    def test_owns(self):
        allocator = Allocator(1 << 20)
        block = allocator.alloc(512)
        assert allocator.owns(block)
        assert allocator.owns(block + 511)
        assert not allocator.owns(block + 512)

    def test_allocation_of(self):
        allocator = Allocator(1 << 20)
        block = allocator.alloc(100)
        start, size = allocator.allocation_of(block + 50)
        assert start == block
        assert size == 256  # rounded to alignment

    def test_accounting(self):
        allocator = Allocator(1 << 20)
        before = allocator.free_bytes()
        allocator.alloc(256)
        assert allocator.free_bytes() == before - 256
        assert allocator.allocated_bytes() == 256
        assert len(allocator) == 1
