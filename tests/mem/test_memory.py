"""Unit tests for global/shared/constant memory with MMU checks."""

import numpy as np
import pytest

from repro.errors import MemoryViolation
from repro.mem.memory import (
    PAGE_SHIFT,
    PAGE_SIZE,
    ConstantBank,
    GlobalMemory,
    SharedMemory,
)


def _lanes(values) -> np.ndarray:
    out = np.zeros(32, dtype=np.int64)
    out[: len(values)] = values
    return out


def _mask(count: int) -> np.ndarray:
    mask = np.zeros(32, dtype=bool)
    mask[:count] = True
    return mask


class TestGlobalMemory:
    def test_host_roundtrip(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        mem.write_bytes(block, b"\x01\x02\x03\x04")
        assert mem.read_bytes(block, 4) == b"\x01\x02\x03\x04"

    def test_load32_gather(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        mem.write_bytes(block, np.arange(16, dtype=np.uint32).tobytes())
        addrs = _lanes([block, block + 4, block + 60])
        out = mem.load32(addrs, _mask(3))
        assert list(out[:3]) == [0, 1, 15]

    def test_store32_scatter(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        addrs = _lanes([block + 8, block + 12])
        values = np.zeros(32, dtype=np.uint32)
        values[0], values[1] = 7, 9
        mem.store32(addrs, _mask(2), values)
        raw = np.frombuffer(mem.read_bytes(block, 16), dtype=np.uint32)
        assert raw[2] == 7 and raw[3] == 9

    def test_load64(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        mem.write_bytes(block, np.array([0x1122334455667788], np.uint64).tobytes())
        out = mem.load64(_lanes([block]), _mask(1))
        assert out[0] == 0x1122334455667788

    def test_misaligned_raises(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        with pytest.raises(MemoryViolation, match="misaligned"):
            mem.load32(_lanes([block + 2]), _mask(1))

    def test_unmapped_raises(self):
        mem = GlobalMemory(1 << 16)
        mem.alloc(64)
        with pytest.raises(MemoryViolation, match="unmapped"):
            mem.load32(_lanes([0x8000]), _mask(1))

    def test_null_pointer_raises(self):
        mem = GlobalMemory(1 << 16)
        mem.alloc(64)
        with pytest.raises(MemoryViolation):
            mem.load32(_lanes([0]), _mask(1))

    def test_straddling_allocation_end_raises(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)  # rounds to 256
        with pytest.raises(MemoryViolation, match="unmapped"):
            mem.load32(_lanes([block + 256]), _mask(1))

    def test_freed_memory_raises(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        mem.free(block)
        with pytest.raises(MemoryViolation, match="unmapped"):
            mem.load32(_lanes([block]), _mask(1))

    def test_inactive_lanes_not_checked(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        addrs = _lanes([block, 0xDEAD1])  # lane 1 bad but inactive
        out = mem.load32(addrs, _mask(1))
        assert out.shape == (32,)

    def test_misaligned_64bit(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        with pytest.raises(MemoryViolation, match="misaligned"):
            mem.load64(_lanes([block + 4]), _mask(1))


class TestDirtyPageTracking:
    """Edge cases of the write-tracking window that golden-replay recording
    and tail fast-forward divergence tracking both depend on."""

    def _tracked(self, size=1 << 16) -> GlobalMemory:
        mem = GlobalMemory(size)
        mem.begin_write_tracking()
        return mem

    def test_host_write_straddles_pages(self):
        """``write_bytes`` has no alignment contract: a payload crossing a
        page boundary must dirty every page it touches."""
        mem = GlobalMemory(1 << 16)
        mem.alloc(4 * PAGE_SIZE)
        mem.begin_write_tracking()
        mem.write_bytes(PAGE_SIZE - 1, b"\xaa" * (PAGE_SIZE + 2))  # pages 0..2
        assert mem.end_write_tracking().tolist() == [0, 1, 2]

    def test_host_write_single_byte_at_page_end(self):
        mem = self._tracked()
        mem.write_bytes(2 * PAGE_SIZE - 1, b"\x01")
        assert mem.end_write_tracking().tolist() == [1]

    def test_empty_host_write_dirties_nothing(self):
        mem = self._tracked()
        mem.write_bytes(0, b"")
        assert mem.end_write_tracking().size == 0

    def test_aligned_stores_cannot_straddle(self):
        """The tracking soundness argument: an aligned W-byte store
        (W divides PAGE_SIZE) starts and ends on the same page, so
        store32/store64/note_stores may page-index starting addresses only."""
        for width in (4, 8):
            assert PAGE_SIZE % width == 0
            last_aligned = PAGE_SIZE - width  # the worst case on any page
            assert (last_aligned >> PAGE_SHIFT) == (
                (last_aligned + width - 1) >> PAGE_SHIFT
            )

    def test_store32_at_page_edges(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(2 * PAGE_SIZE)
        assert block % PAGE_SIZE == 0  # allocator returns page-aligned blocks
        mem.begin_write_tracking()
        # Last word of the first page and first word of the second.
        addrs = _lanes([block + PAGE_SIZE - 4, block + PAGE_SIZE])
        mem.store32(addrs, _mask(2), np.ones(32, dtype=np.uint32))
        pages = mem.end_write_tracking()
        assert pages.tolist() == [block >> PAGE_SHIFT, (block >> PAGE_SHIFT) + 1]

    def test_store64_tracks_start_page_only(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(2 * PAGE_SIZE)
        mem.begin_write_tracking()
        addrs = np.zeros(32, dtype=np.int64)
        addrs[0] = block + PAGE_SIZE - 8  # aligned: stays on the first page
        mem.store64(addrs, _mask(1), np.full(32, 0xAB, dtype=np.uint64))
        assert mem.end_write_tracking().tolist() == [block >> PAGE_SHIFT]

    def test_note_stores_ignores_inactive_lanes(self):
        """Atomics report via note_stores; masked-off lanes must not dirty
        their (possibly garbage) addresses."""
        mem = self._tracked()
        addrs = _lanes([3 * PAGE_SIZE, 0xDEAD00])  # lane 1 inactive
        mem.note_stores(addrs, _mask(1))
        assert mem.end_write_tracking().tolist() == [3]

    def test_note_stores_outside_window_is_free(self):
        mem = GlobalMemory(1 << 16)
        mem.note_stores(_lanes([0]), _mask(1))  # no window: no-op
        mem.begin_write_tracking()
        assert mem.end_write_tracking().size == 0

    def test_windows_are_independent(self):
        """A second window must not resurface the first window's pages."""
        mem = self._tracked()
        mem.write_bytes(0, b"\x01")
        assert mem.end_write_tracking().tolist() == [0]
        mem.begin_write_tracking()
        mem.write_bytes(5 * PAGE_SIZE, b"\x01")
        assert mem.end_write_tracking().tolist() == [5]


class TestDiffPages:
    def test_reports_only_differing_candidates(self):
        mem = GlobalMemory(1 << 16)
        shadow = mem.data.copy()
        mem.data[3 * PAGE_SIZE] ^= 0xFF  # page 3 diverges
        candidates = np.array([1, 3, 7], dtype=np.int64)
        assert mem.diff_pages(shadow, candidates).tolist() == [3]

    def test_single_bit_difference_detected(self):
        mem = GlobalMemory(1 << 16)
        shadow = mem.data.copy()
        mem.data[5 * PAGE_SIZE + PAGE_SIZE - 1] ^= 0x01  # last byte, one bit
        assert mem.diff_pages(shadow, np.array([5], np.int64)).tolist() == [5]

    def test_divergence_outside_candidates_unreported(self):
        """diff_pages only examines the candidate set — the caller owns the
        invariant that every possibly-divergent page is a candidate."""
        mem = GlobalMemory(1 << 16)
        shadow = mem.data.copy()
        mem.data[2 * PAGE_SIZE] ^= 0xFF
        assert mem.diff_pages(shadow, np.array([0, 1], np.int64)).size == 0

    def test_empty_candidates(self):
        mem = GlobalMemory(1 << 16)
        out = mem.diff_pages(mem.data.copy(), np.empty(0, dtype=np.int64))
        assert out.size == 0


class TestSharedMemory:
    def test_roundtrip(self):
        shared = SharedMemory(128)
        values = np.zeros(32, dtype=np.uint32)
        values[0] = 42
        shared.store32(_lanes([16]), _mask(1), values)
        assert shared.load32(_lanes([16]), _mask(1))[0] == 42

    def test_out_of_bounds(self):
        shared = SharedMemory(128)
        with pytest.raises(MemoryViolation, match="out-of-bounds"):
            shared.load32(_lanes([128]), _mask(1))

    def test_misaligned(self):
        shared = SharedMemory(128)
        with pytest.raises(MemoryViolation, match="misaligned"):
            shared.load32(_lanes([3]), _mask(1))


class TestConstantBank:
    def test_params_visible(self):
        bank = ConstantBank()
        bank.write_params([10, 20, 0xFFFFFFFF])
        assert bank.read32(0) == 10
        assert bank.read32(4) == 20
        assert bank.read32(8) == 0xFFFFFFFF

    def test_vector_load(self):
        bank = ConstantBank()
        bank.write_params([5, 6])
        out = bank.load32(_lanes([0, 4]), _mask(2))
        assert list(out[:2]) == [5, 6]

    def test_out_of_bounds_read(self):
        bank = ConstantBank(size=16)
        with pytest.raises(MemoryViolation):
            bank.read32(16)

    def test_misaligned_read(self):
        bank = ConstantBank()
        with pytest.raises(MemoryViolation):
            bank.read32(2)
