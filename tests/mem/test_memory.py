"""Unit tests for global/shared/constant memory with MMU checks."""

import numpy as np
import pytest

from repro.errors import MemoryViolation
from repro.mem.memory import ConstantBank, GlobalMemory, SharedMemory


def _lanes(values) -> np.ndarray:
    out = np.zeros(32, dtype=np.int64)
    out[: len(values)] = values
    return out


def _mask(count: int) -> np.ndarray:
    mask = np.zeros(32, dtype=bool)
    mask[:count] = True
    return mask


class TestGlobalMemory:
    def test_host_roundtrip(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        mem.write_bytes(block, b"\x01\x02\x03\x04")
        assert mem.read_bytes(block, 4) == b"\x01\x02\x03\x04"

    def test_load32_gather(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        mem.write_bytes(block, np.arange(16, dtype=np.uint32).tobytes())
        addrs = _lanes([block, block + 4, block + 60])
        out = mem.load32(addrs, _mask(3))
        assert list(out[:3]) == [0, 1, 15]

    def test_store32_scatter(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        addrs = _lanes([block + 8, block + 12])
        values = np.zeros(32, dtype=np.uint32)
        values[0], values[1] = 7, 9
        mem.store32(addrs, _mask(2), values)
        raw = np.frombuffer(mem.read_bytes(block, 16), dtype=np.uint32)
        assert raw[2] == 7 and raw[3] == 9

    def test_load64(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        mem.write_bytes(block, np.array([0x1122334455667788], np.uint64).tobytes())
        out = mem.load64(_lanes([block]), _mask(1))
        assert out[0] == 0x1122334455667788

    def test_misaligned_raises(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        with pytest.raises(MemoryViolation, match="misaligned"):
            mem.load32(_lanes([block + 2]), _mask(1))

    def test_unmapped_raises(self):
        mem = GlobalMemory(1 << 16)
        mem.alloc(64)
        with pytest.raises(MemoryViolation, match="unmapped"):
            mem.load32(_lanes([0x8000]), _mask(1))

    def test_null_pointer_raises(self):
        mem = GlobalMemory(1 << 16)
        mem.alloc(64)
        with pytest.raises(MemoryViolation):
            mem.load32(_lanes([0]), _mask(1))

    def test_straddling_allocation_end_raises(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)  # rounds to 256
        with pytest.raises(MemoryViolation, match="unmapped"):
            mem.load32(_lanes([block + 256]), _mask(1))

    def test_freed_memory_raises(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        mem.free(block)
        with pytest.raises(MemoryViolation, match="unmapped"):
            mem.load32(_lanes([block]), _mask(1))

    def test_inactive_lanes_not_checked(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        addrs = _lanes([block, 0xDEAD1])  # lane 1 bad but inactive
        out = mem.load32(addrs, _mask(1))
        assert out.shape == (32,)

    def test_misaligned_64bit(self):
        mem = GlobalMemory(1 << 16)
        block = mem.alloc(64)
        with pytest.raises(MemoryViolation, match="misaligned"):
            mem.load64(_lanes([block + 4]), _mask(1))


class TestSharedMemory:
    def test_roundtrip(self):
        shared = SharedMemory(128)
        values = np.zeros(32, dtype=np.uint32)
        values[0] = 42
        shared.store32(_lanes([16]), _mask(1), values)
        assert shared.load32(_lanes([16]), _mask(1))[0] == 42

    def test_out_of_bounds(self):
        shared = SharedMemory(128)
        with pytest.raises(MemoryViolation, match="out-of-bounds"):
            shared.load32(_lanes([128]), _mask(1))

    def test_misaligned(self):
        shared = SharedMemory(128)
        with pytest.raises(MemoryViolation, match="misaligned"):
            shared.load32(_lanes([3]), _mask(1))


class TestConstantBank:
    def test_params_visible(self):
        bank = ConstantBank()
        bank.write_params([10, 20, 0xFFFFFFFF])
        assert bank.read32(0) == 10
        assert bank.read32(4) == 20
        assert bank.read32(8) == 0xFFFFFFFF

    def test_vector_load(self):
        bank = ConstantBank()
        bank.write_params([5, 6])
        out = bank.load32(_lanes([0, 4]), _mask(2))
        assert list(out[:2]) == [5, 6]

    def test_out_of_bounds_read(self):
        bank = ConstantBank(size=16)
        with pytest.raises(MemoryViolation):
            bank.read32(16)

    def test_misaligned_read(self):
        bank = ConstantBank()
        with pytest.raises(MemoryViolation):
            bank.read32(2)
