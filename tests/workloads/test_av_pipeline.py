"""AV-pipeline tests: fault injection into dynamically loaded libraries.

This is the paper's headline scenario (§IV): the target kernels live in
runtime-loaded libraries the host program was never compiled against, yet
NVBitFI profiles and injects into them transparently.
"""


from repro.core.bitflip import BitFlipModel
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.groups import InstructionGroup
from repro.core.injector import TransientInjectorTool
from repro.core.outcomes import Outcome, classify
from repro.core.params import TransientParams
from repro.core.profiler import ProfilerTool, ProfilingMode
from repro.runner.golden import capture_golden
from repro.runner.sandbox import run_app
from repro.workloads import AvPipeline


class TestGolden:
    def test_runs_clean(self):
        golden = capture_golden(AvPipeline())
        assert "processed 5 frames" in golden.stdout

    def test_libraries_loaded_at_runtime(self):
        app = AvPipeline()

        class LibrarySpy(ProfilerTool):
            loaded = []

            def nvbit_at_cuda_event(self, driver, event, payload, is_exit):
                from repro.cuda.driver import CudaEvent

                if event is CudaEvent.MODULE_LOAD and is_exit:
                    self.loaded.append((payload.name, payload.is_library))
                super().nvbit_at_cuda_event(driver, event, payload, is_exit)

        spy = LibrarySpy()
        run_app(app, preload=[spy])
        libraries = [name for name, is_lib in spy.loaded if is_lib]
        assert set(libraries) == {"libperception.so", "libplanning.so"}


class TestProfilingLibraries:
    def test_profiler_sees_library_kernels(self):
        """No source, no recompilation — the profiler still sees everything."""
        profiler = ProfilerTool(ProfilingMode.EXACT)
        run_app(AvPipeline(), preload=[profiler])
        names = {kp.kernel_name for kp in profiler.profile.kernels}
        assert "detect_layer" in names  # from libperception.so
        assert "planning_cost" in names  # from libplanning.so
        assert profiler.profile.num_dynamic_kernels == 25  # 5 kernels x 5 frames


class TestInjectionIntoLibrary:
    def test_inject_into_library_kernel(self):
        app = AvPipeline()
        golden = capture_golden(app)
        params = TransientParams(
            group=InstructionGroup.G_GP,
            model=BitFlipModel.RANDOM_VALUE,
            kernel_name="detect_layer",
            kernel_count=2,  # third frame
            instruction_count=64,
            dest_reg_selector=0.0,
            bit_pattern_value=0.9,
        )
        injector = TransientInjectorTool(params)
        observed = run_app(app, preload=[injector])
        assert injector.record.injected
        assert injector.record.kernel_name == "detect_layer"
        record = classify(app, golden, observed)
        assert record.outcome in (Outcome.SDC, Outcome.MASKED, Outcome.DUE)

    def test_full_campaign_over_library_app(self):
        campaign = Campaign(AvPipeline(), CampaignConfig(num_transient=6, seed=4))
        result = campaign.run_transient()
        assert len(result.results) == 6
        injected_kernels = {
            r.record.kernel_name for r in result.results if r.record.injected
        }
        # Sites land inside the dynamically loaded libraries.
        library_kernels = {
            "perception_preprocess", "detect_layer", "perception_nms",
            "planning_track", "planning_cost",
        }
        assert injected_kernels <= library_kernels
        assert injected_kernels  # at least one actually injected


class TestRealtimeCheck:
    def test_backup_mode_on_detected_failure(self):
        """A corrupted pointer that faults the GPU trips the per-frame
        check and engages the backup path (exit 9 => DUE)."""
        app = AvPipeline()
        golden = capture_golden(app)
        outcomes = []
        for seed in range(25):
            params = TransientParams(
                group=InstructionGroup.G_GP,
                model=BitFlipModel.RANDOM_VALUE,
                kernel_name="detect_layer",
                kernel_count=0,
                instruction_count=seed * 7,
                dest_reg_selector=0.0,
                bit_pattern_value=0.97,
            )
            injector = TransientInjectorTool(params)
            observed = run_app(app, preload=[injector])
            outcomes.append(classify(app, golden, observed))
        # Random-value corruption of address-feeding registers produces at
        # least one detected failure across 25 runs.
        assert any(o.outcome is Outcome.DUE for o in outcomes)
