"""Table IV structural checks: static/dynamic kernel counts per program.

These pin the *shape* of the scaled suite: the static-kernel diversity and
relative dynamic-kernel ordering of Table IV are preserved even though the
absolute dynamic counts are scaled down (documented in EXPERIMENTS.md).
"""

import pytest

from repro.core.profiler import ProfilerTool, ProfilingMode
from repro.runner.sandbox import run_app
from repro.workloads import get_workload

# name -> (expected static kernels, expected dynamic kernels) in our scaling.
_EXPECTED = {
    "303.ostencil": (2, 21),
    "304.olbm": (3, 45),
    "314.omriq": (2, 2),
    "350.md": (3, 18),
    "351.palm": (10, 71),
    "352.ep": (7, 25),
    "353.clvrleaf": (12, 120),
    "354.cg": (6, 57),
    "355.seismic": (6, 44),
    "356.sp": (9, 126),
    "357.csp": (9, 117),
    "359.miniGhost": (6, 72),
    "360.ilbdc": (1, 40),
    "363.swim": (5, 90),
    "370.bt": (8, 96),
}


def _profile(name):
    profiler = ProfilerTool(ProfilingMode.APPROXIMATE)
    artifacts = run_app(get_workload(name), preload=[profiler])
    assert artifacts.exit_status == 0
    return profiler.profile


@pytest.mark.parametrize("name,expected", sorted(_EXPECTED.items()))
def test_kernel_counts(name, expected):
    profile = _profile(name)
    assert (profile.num_static_kernels, profile.num_dynamic_kernels) == expected


def test_static_kernel_ordering_tracks_table_iv():
    """Programs with more static kernels in Table IV have more here too
    (coarsely): clvrleaf/palm at the top, ilbdc alone at the bottom."""
    statics = {name: counts[0] for name, counts in _EXPECTED.items()}
    assert statics["360.ilbdc"] == 1
    assert statics["353.clvrleaf"] == max(statics.values()) or statics[
        "351.palm"
    ] == max(statics.values())
    assert statics["353.clvrleaf"] > statics["303.ostencil"]


def test_dynamic_heavy_programs_stay_heavy():
    """SP and CSP have the largest dynamic-kernel counts in Table IV; the
    scaled suite preserves that ordering."""
    dynamics = {name: counts[1] for name, counts in _EXPECTED.items()}
    assert dynamics["356.sp"] == max(dynamics.values())
    assert dynamics["357.csp"] > dynamics["363.swim"]
    assert dynamics["314.omriq"] == min(dynamics.values())
