"""Direct unit tests of the shared kernel factories."""

import numpy as np
import pytest

from repro.sass import assemble
from repro.workloads import kernels as kf
from tests.conftest import read_f32, write_f32


def _launch(device, text, name, grid, block, params):
    device.launch(assemble(text).get(name), grid, block, params)


class TestEwise:
    def test_ewise1(self, device):
        text = kf.ewise1("square", lambda kb, x: kb.fmul(x, x))
        data = np.arange(40, dtype=np.float32)
        src = device.malloc(160)
        dst = device.malloc(160)
        write_f32(device, src, data)
        _launch(device, text, "square", 2, 32, [40, src, dst])
        assert np.allclose(read_f32(device, dst, 40), data**2)

    def test_ewise1_respects_bounds(self, device):
        text = kf.ewise1("copy1", lambda kb, x: kb.mov(x))
        src = device.malloc(256)
        dst = device.malloc(256)
        write_f32(device, dst, np.full(64, -1.0, np.float32))
        write_f32(device, src, np.arange(64, dtype=np.float32))
        _launch(device, text, "copy1", 2, 32, [10, src, dst])
        out = read_f32(device, dst, 64)
        assert np.allclose(out[:10], np.arange(10))
        assert (out[10:] == -1.0).all()  # untouched beyond n

    def test_ewise2_scalar(self, device):
        from repro.utils.bits import f32_to_bits

        text = kf.ewise2_scalar("axpy2", lambda kb, y, x, a: kb.ffma(x, a, y))
        x = np.arange(32, dtype=np.float32)
        y = np.ones(32, dtype=np.float32)
        px, py, pout = device.malloc(128), device.malloc(128), device.malloc(128)
        write_f32(device, px, y)
        write_f32(device, py, x)
        _launch(device, text, "axpy2", 1, 32,
                [32, px, py, pout, f32_to_bits(3.0)])
        assert np.allclose(read_f32(device, pout, 32), 1.0 + 3.0 * x)

    def test_ewise3(self, device):
        text = kf.ewise3("fma3", lambda kb, a, b, c: kb.ffma(a, b, c))
        arrays = [np.random.default_rng(i).random(32).astype(np.float32)
                  for i in range(3)]
        pointers = []
        for arr in arrays:
            p = device.malloc(128)
            write_f32(device, p, arr)
            pointers.append(p)
        out = device.malloc(128)
        _launch(device, text, "fma3", 1, 32, [32, *pointers, out])
        expected = arrays[0] * arrays[1] + arrays[2]
        assert np.allclose(read_f32(device, out, 32), expected, rtol=1e-6)


class TestReductions:
    def test_dot_product(self, device):
        text = kf.dot_product("dp")
        rng = np.random.default_rng(0)
        x = rng.random(100).astype(np.float32)
        y = rng.random(100).astype(np.float32)
        px, py = device.malloc(400), device.malloc(400)
        write_f32(device, px, x)
        write_f32(device, py, y)
        acc = device.malloc(4)
        write_f32(device, acc, np.zeros(1, np.float32))
        _launch(device, text, "dp", 4, 32, [100, px, py, acc])
        assert np.isclose(read_f32(device, acc, 1)[0], float(x @ y), rtol=1e-4)

    def test_reduce_sum_accumulates_across_launches(self, device):
        text = kf.reduce_sum("rs2")
        data = np.ones(64, dtype=np.float32)
        src = device.malloc(256)
        write_f32(device, src, data)
        acc = device.malloc(4)
        write_f32(device, acc, np.zeros(1, np.float32))
        for _ in range(3):
            _launch(device, text, "rs2", 2, 32, [64, src, acc])
        assert read_f32(device, acc, 1)[0] == 192.0


class TestStencil:
    def test_boundary_cells_copied(self, device):
        text = kf.stencil5("st5", center=0.0, neighbour=0.0, width=16)
        field = np.random.default_rng(1).random((8, 16)).astype(np.float32)
        src = device.malloc(field.nbytes)
        dst = device.malloc(field.nbytes)
        write_f32(device, src, field)
        _launch(device, text, "st5", 2, 64, [8, src, dst])
        out = read_f32(device, dst, 128).reshape(8, 16)
        # With zero coefficients, interior becomes 0 and boundary copies.
        assert np.allclose(out[0], field[0])
        assert np.allclose(out[-1], field[-1])
        assert np.allclose(out[:, 0], field[:, 0])
        assert np.allclose(out[1:-1, 1:-1], 0.0)

    def test_non_power_of_two_width_rejected(self):
        with pytest.raises(ValueError, match="power of two"):
            kf.stencil5("bad", 1.0, 0.1, width=24)


class TestTridiag:
    def test_backward_sweep(self, device):
        text = kf.tridiag_sweep("tb", forward=False, width=8, coef=1.0)
        field = np.ones((4, 8), dtype=np.float32)
        p = device.malloc(field.nbytes)
        write_f32(device, p, field)
        _launch(device, text, "tb", 1, 4, [4, p])
        out = read_f32(device, p, 32).reshape(4, 8)
        # Backward recurrence from column 6 down to column 1 with carry.
        expected = field.copy()
        carry = np.zeros(4, dtype=np.float32)
        for col in range(6, 0, -1):
            expected[:, col] = carry + expected[:, col]
            carry = expected[:, col]
        assert np.allclose(out, expected)
