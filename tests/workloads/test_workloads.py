"""Workload-suite tests: golden behaviour, determinism, check scripts."""

import numpy as np
import pytest

from repro.runner.artifacts import RunArtifacts
from repro.runner.golden import capture_golden
from repro.runner.sandbox import SandboxConfig, run_app
from repro.workloads import WORKLOAD_CLASSES, all_workloads, get_workload

_ALL_NAMES = [cls.name for cls in WORKLOAD_CLASSES]


class TestSuiteShape:
    def test_fifteen_programs(self):
        """Table IV lists 15 SpecACCEL OpenACC v1.2 programs."""
        assert len(WORKLOAD_CLASSES) == 15

    def test_names_match_table_iv(self):
        expected = {
            "303.ostencil", "304.olbm", "314.omriq", "350.md", "351.palm",
            "352.ep", "353.clvrleaf", "354.cg", "355.seismic", "356.sp",
            "357.csp", "359.miniGhost", "360.ilbdc", "363.swim", "370.bt",
        }
        assert set(_ALL_NAMES) == expected

    def test_paper_metadata_present(self):
        for cls in WORKLOAD_CLASSES:
            assert cls.paper_static_kernels > 0
            assert cls.paper_dynamic_kernels > 0

    def test_get_workload_unknown(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("banana")

    def test_all_workloads_fresh_instances(self):
        first = all_workloads()
        second = all_workloads()
        assert all(a is not b for a, b in zip(first, second))


@pytest.mark.parametrize("name", _ALL_NAMES)
class TestEveryProgram:
    def test_golden_run_clean(self, name):
        golden = capture_golden(get_workload(name))
        assert golden.exit_status == 0
        assert golden.stdout
        assert golden.files

    def test_deterministic(self, name):
        app = get_workload(name)
        a = run_app(app, config=SandboxConfig(seed=3))
        b = run_app(app, config=SandboxConfig(seed=3))
        assert a.stdout == b.stdout
        assert a.files == b.files

    def test_check_passes_against_itself(self, name):
        app = get_workload(name)
        golden = capture_golden(app)
        assert app.check(golden, golden).passed


class TestCheckScripts:
    def _golden(self, name) -> tuple:
        app = get_workload(name)
        return app, capture_golden(app)

    def test_tolerance_masks_tiny_fp_noise(self):
        app, golden = self._golden("303.ostencil")
        noisy = RunArtifacts(stdout=golden.stdout, files=dict(golden.files))
        data = np.frombuffer(noisy.files[app.output_file], np.float32).copy()
        data[0] += data[0] * 1e-6  # far below check_rtol
        noisy.files[app.output_file] = data.tobytes()
        assert app.check(golden, noisy).passed

    def test_large_corruption_detected(self):
        app, golden = self._golden("303.ostencil")
        corrupt = RunArtifacts(stdout=golden.stdout, files=dict(golden.files))
        data = np.frombuffer(corrupt.files[app.output_file], np.float32).copy()
        data[5] += 1000.0
        corrupt.files[app.output_file] = data.tobytes()
        result = app.check(golden, corrupt)
        assert not result.passed
        assert "Output file" in result.detail

    def test_stdout_change_detected(self):
        app, golden = self._golden("360.ilbdc")
        altered = RunArtifacts(stdout="something else\n", files=dict(golden.files))
        assert not app.check(golden, altered).passed

    def test_missing_file_detected(self):
        app, golden = self._golden("360.ilbdc")
        empty = RunArtifacts(stdout=golden.stdout, files={})
        result = app.check(golden, empty)
        assert not result.passed
        assert "missing" in result.detail

    def test_integer_workload_is_bit_exact(self):
        """352.ep (integer LCG + histogram) uses exact comparison."""
        app, golden = self._golden("352.ep")
        corrupt = RunArtifacts(stdout=golden.stdout, files=dict(golden.files))
        data = np.frombuffer(corrupt.files[app.output_file], np.float32).copy()
        data[0] = np.nextafter(data[0], np.float32(np.inf))  # one ULP
        corrupt.files[app.output_file] = data.tobytes()
        assert not app.check(golden, corrupt).passed


class TestSeeds:
    def test_different_seeds_different_inputs(self):
        app = get_workload("350.md")
        a = run_app(app, config=SandboxConfig(seed=1))
        b = run_app(app, config=SandboxConfig(seed=2))
        assert a.files[app.output_file] != b.files[app.output_file]
