"""Per-program injection smoke: one real fault in each of the 15 programs.

Guards against any workload drifting into a state where the injection
machinery silently stops reaching it (e.g. kernel renames, group droughts).
"""

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.groups import InstructionGroup
from repro.core.outcomes import Outcome
from repro.workloads import WORKLOAD_CLASSES


@pytest.mark.parametrize("cls", WORKLOAD_CLASSES, ids=lambda c: c.name)
def test_one_injection_lands(cls):
    campaign = Campaign(cls(), CampaignConfig(num_transient=1, seed=31))
    result = campaign.run_transient()
    item = result.results[0]
    assert item.record.injected, item.params
    assert item.outcome.outcome in Outcome
    # The site was drawn from the default G_GP population.
    assert item.params.group is InstructionGroup.G_GP


@pytest.mark.parametrize(
    "cls", WORKLOAD_CLASSES[:4], ids=lambda c: c.name
)
def test_fp32_group_reachable(cls):
    """The first few programs are FP-heavy; a G_FP32 site must exist."""
    config = CampaignConfig(
        num_transient=1, seed=5, group=InstructionGroup.G_FP32
    )
    campaign = Campaign(cls(), config)
    result = campaign.run_transient()
    assert result.results[0].record.injected
