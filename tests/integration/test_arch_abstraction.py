"""Architectural-abstraction tests (paper §I, third bullet).

NVBitFI 'presents a single interface that works on all recent NVIDIA
architecture families'.  Here: the same workload, profile and injection
behave identically across the simulated Kepler..Ampere families (modulo SM
counts, which change block placement but not single-block programs).
"""


from repro.arch.families import ARCH_FAMILIES
from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup
from repro.core.injector import TransientInjectorTool
from repro.core.params import TransientParams
from repro.core.profiler import ProfilerTool, ProfilingMode
from repro.runner.sandbox import SandboxConfig, run_app
from repro.workloads import get_workload

_FAMILIES = sorted(ARCH_FAMILIES)


def _config(family: str) -> SandboxConfig:
    # Pin the SM count so block->SM placement (and hence SMID-dependent
    # state, none of which our workloads use) is identical across families.
    return SandboxConfig(family=family, num_sms=8)


class TestSameToolEveryFamily:
    def test_golden_outputs_identical(self):
        app = get_workload("314.omriq")
        outputs = {}
        for family in _FAMILIES:
            artifacts = run_app(app, config=_config(family))
            assert artifacts.exit_status == 0
            outputs[family] = (artifacts.stdout, artifacts.files[app.output_file])
        reference = outputs[_FAMILIES[0]]
        for family, observed in outputs.items():
            assert observed == reference, family

    def test_profiles_identical(self):
        app = get_workload("360.ilbdc")
        texts = set()
        for family in _FAMILIES:
            profiler = ProfilerTool(ProfilingMode.EXACT)
            run_app(app, preload=[profiler], config=_config(family))
            texts.add(profiler.profile.to_text())
        assert len(texts) == 1

    def test_same_fault_same_outcome(self):
        app = get_workload("314.omriq")
        site = TransientParams(
            group=InstructionGroup.G_GP,
            model=BitFlipModel.FLIP_SINGLE_BIT,
            kernel_name="computeQ",
            kernel_count=0,
            instruction_count=777,
            dest_reg_selector=0.3,
            bit_pattern_value=0.6,
        )
        results = set()
        for family in _FAMILIES:
            injector = TransientInjectorTool(site)
            artifacts = run_app(app, preload=[injector], config=_config(family))
            assert injector.record.injected, family
            results.add(
                (injector.record.opcode, injector.record.lane,
                 injector.record.value_after, artifacts.stdout)
            )
        assert len(results) == 1  # bit-identical across families
