"""Cross-module integration tests: the full Figure 1 pipeline."""

import numpy as np

from repro.core.bitflip import BitFlipModel
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.groups import InstructionGroup
from repro.core.injector import TransientInjectorTool
from repro.core.outcomes import Outcome, classify
from repro.core.profiler import ProfilerTool, ProfilingMode
from repro.core.site_selection import select_transient_sites
from repro.runner.golden import capture_golden
from repro.runner.sandbox import SandboxConfig, run_app
from repro.workloads import get_workload

from repro.utils.rng import SeedSequenceStream


class TestFigureOnePipeline:
    """Profile -> select -> inject -> classify, on a real workload."""

    def test_pipeline_steps_compose(self):
        app = get_workload("304.olbm")
        golden = capture_golden(app)

        profiler = ProfilerTool(ProfilingMode.EXACT)
        run_app(app, preload=[profiler])
        profile = profiler.profile
        assert profile.total_count(InstructionGroup.G_GP) > 0

        rng = SeedSequenceStream(3).child("sites").generator()
        sites = select_transient_sites(
            profile, InstructionGroup.G_GP, BitFlipModel.FLIP_SINGLE_BIT, 8, rng
        )
        outcomes = []
        for site in sites:
            injector = TransientInjectorTool(site)
            observed = run_app(app, preload=[injector])
            outcomes.append(classify(app, golden, observed))
            assert injector.record.injected, site
        assert all(o.outcome in Outcome for o in outcomes)

    def test_profile_counts_match_instrumented_reality(self):
        """The profile total equals what an independent counting tool sees."""
        from repro.cuda.driver import CudaEvent
        from repro.nvbit import IPoint, NVBitTool

        class IndependentCounter(NVBitTool):
            def __init__(self):
                super().__init__()
                self.total = 0
                self._done = set()

            def nvbit_at_cuda_event(self, driver, event, payload, is_exit):
                if event is CudaEvent.LAUNCH_KERNEL and not is_exit:
                    if payload.func not in self._done:
                        self._done.add(payload.func)
                        for instr in self.nvbit.get_instrs(payload.func):
                            instr.insert_call(
                                lambda s: self._bump(s), IPoint.AFTER
                            )
                    self.nvbit.enable_instrumented(payload.func, True)

            def _bump(self, site):
                self.total += site.num_executed

        app = get_workload("303.ostencil")
        profiler = ProfilerTool(ProfilingMode.EXACT)
        counter = IndependentCounter()
        run_app(app, preload=[profiler, counter])
        assert counter.total == profiler.profile.total_count()

    def test_masked_injection_leaves_run_bit_identical(self):
        """A never-activated injection must produce the golden artifacts."""
        app = get_workload("360.ilbdc")
        golden = capture_golden(app)
        from repro.core.params import TransientParams

        site = TransientParams(
            group=InstructionGroup.G_GP,
            model=BitFlipModel.FLIP_SINGLE_BIT,
            kernel_name="ilbdc_lattice",
            kernel_count=999,  # never reached
            instruction_count=0,
            dest_reg_selector=0.0,
            bit_pattern_value=0.0,
        )
        injector = TransientInjectorTool(site)
        observed = run_app(app, preload=[injector])
        assert not injector.record.injected
        assert observed.stdout == golden.stdout
        assert observed.files == golden.files


class TestOutcomeDiversity:
    def test_campaign_produces_mixed_outcomes(self):
        """Across enough random-value injections on a pointer-heavy program,
        the three Table V outcome classes all appear."""
        config = CampaignConfig(
            num_transient=40,
            seed=17,
            model=BitFlipModel.RANDOM_VALUE,
        )
        campaign = Campaign(get_workload("356.sp"), config)
        result = campaign.run_transient()
        fractions = result.tally.fractions()
        assert fractions["SDC"] > 0
        assert fractions["Masked"] > 0
        assert fractions["SDC"] + fractions["DUE"] + fractions["Masked"] == 1.0

    def test_low_bit_fp_flips_mostly_masked_or_small_sdc(self):
        """Bit 0 flips of FP32 values should be overwhelmingly tolerated by
        SpecACCEL-style tolerance checks."""
        app = get_workload("363.swim")
        campaign = Campaign(app, CampaignConfig(seed=5))
        campaign.run_golden()
        campaign.run_profile()
        from repro.core.params import TransientParams

        masked = 0
        sites = campaign.select_sites(15)
        for site in sites:
            low_bit = TransientParams(
                group=InstructionGroup.G_FP32,
                model=BitFlipModel.FLIP_SINGLE_BIT,
                kernel_name=site.kernel_name,
                kernel_count=site.kernel_count,
                instruction_count=site.instruction_count % 50,
                dest_reg_selector=0.0,
                bit_pattern_value=0.001,  # bit 0: one ULP
            )
            injector = TransientInjectorTool(low_bit)
            observed = run_app(app, preload=[injector],
                               config=campaign._injection_config())
            record = classify(app, campaign.golden, observed)
            if record.outcome is Outcome.MASKED:
                masked += 1
        assert masked >= 10  # > 2/3 masked


class TestHangInjection:
    def test_corrupted_loop_bound_hangs_and_is_due(self):
        """Flipping a high bit of a loop-bound register turns into a hang
        caught by the watchdog — the Table V 'Timeout' row, produced by a
        real injected fault rather than a synthetic artifact."""
        import numpy as np

        from repro.core.params import TransientParams
        from repro.runner.app import Application

        text = """
.kernel counter
.params 1
    MOV R1, RZ ;
    MOV R2, 50 ;
    PBK DONE ;
LOOP:
    ISETP.GE P0, R1, R2 ;
@P0 BRK ;
    IADD R1, R1, 1 ;
    BRA LOOP ;
DONE:
    MOV R3, c[0x0][0x0] ;
    STG.32 [R3], R1 ;
    EXIT ;
"""

        class CounterApp(Application):
            name = "counter_app"

            def run(self, ctx):
                module = ctx.cuda.load_module(text)
                out = ctx.cuda.alloc(1, np.uint32)
                ctx.cuda.launch(ctx.cuda.get_function(module, "counter"), 1, 1, out)
                ctx.write_file("out", out.to_host().tobytes())

        app = CounterApp()
        golden = capture_golden(app)
        # G_GP stream: MOV(1), MOV(1) <- target the second MOV (loop bound,
        # R2=50) and flip bit 30.
        site = TransientParams(
            group=InstructionGroup.G_GP,
            model=BitFlipModel.FLIP_SINGLE_BIT,
            kernel_name="counter",
            kernel_count=0,
            instruction_count=1,
            dest_reg_selector=0.0,
            bit_pattern_value=30.5 / 32,
        )
        injector = TransientInjectorTool(site)
        observed = run_app(
            app, preload=[injector],
            config=SandboxConfig(instruction_budget=20_000),
        )
        record = classify(app, golden, observed)
        assert injector.record.injected
        assert observed.timed_out
        assert record.outcome is Outcome.DUE
        assert "Timeout" in record.symptom
