"""KernelBuilder tests: codegen correctness verified by execution."""

import numpy as np
import pytest

from repro.errors import AssemblyError
from repro.kbuild import KernelBuilder
from repro.sass import assemble
from tests.conftest import read_f32, read_u32, write_f32, write_u32

LANES = np.arange(32)


def _run(device, kb: KernelBuilder, params, grid=1, block=32):
    kernel = assemble(kb.finish()).get(kb.name)
    device.launch(kernel, grid, block, params)


class TestStraightLine:
    def test_integer_pipeline(self, device):
        out = device.malloc(4 * 32)
        kb = KernelBuilder("k", num_params=1)
        i = kb.global_tid_x()
        value = kb.imad(i, kb.const_u32(3), kb.const_u32(7))
        kb.stg(kb.index(kb.param(0), i, 4), value)
        _run(device, kb, [out])
        assert (read_u32(device, out, 32) == LANES * 3 + 7).all()

    def test_float_pipeline(self, device):
        data = device.malloc(4 * 32)
        out = device.malloc(4 * 32)
        write_f32(device, data, np.arange(32, dtype=np.float32))
        kb = KernelBuilder("k", num_params=2)
        i = kb.global_tid_x()
        x = kb.ldg_f32(kb.index(kb.param(0), i, 4))
        y = kb.ffma(x, kb.const_f32(0.5), kb.const_f32(1.0))
        kb.stg(kb.index(kb.param(1), i, 4), y)
        _run(device, kb, [data, out])
        assert np.allclose(read_f32(device, out, 32), LANES * 0.5 + 1.0)

    def test_fp64_pipeline(self, device):
        out = device.malloc(4 * 32)
        kb = KernelBuilder("k", num_params=1)
        i = kb.global_tid_x()
        xd = kb.f2d(kb.i2f(i))
        squared = kb.dmul(xd, xd)
        kb.stg(kb.index(kb.param(0), i, 4), kb.d2f(squared))
        _run(device, kb, [out])
        assert np.allclose(read_f32(device, out, 32), (LANES**2).astype(np.float32))

    def test_register_reuse_keeps_count_low(self):
        kb = KernelBuilder("k", num_params=1)
        i = kb.global_tid_x()
        value = i
        for _ in range(30):
            value = kb.iadd(value, 1)
        kb.stg(kb.index(kb.param(0), i, 4), value)
        kernel = assemble(kb.finish()).get("k")
        # 30 chained adds with dead intermediates must not need 30 registers.
        assert kernel.num_regs < 12


class TestControlFlow:
    def test_if_then(self, device):
        out = device.malloc(4 * 32)
        write_u32(device, out, np.zeros(32))
        kb = KernelBuilder("k", num_params=1)
        i = kb.global_tid_x()
        small = kb.isetp("LT", i, 10)
        addr = kb.index(kb.param(0), i, 4)
        with kb.if_then(small):
            kb.stg(addr, kb.const_u32(5))
        kb.exit()
        _run(device, kb, [out])
        values = read_u32(device, out, 32)
        assert (values[:10] == 5).all() and (values[10:] == 0).all()

    def test_if_then_negated(self, device):
        out = device.malloc(4 * 32)
        kb = KernelBuilder("k", num_params=1)
        i = kb.global_tid_x()
        small = kb.isetp("LT", i, 10)
        addr = kb.index(kb.param(0), i, 4)
        with kb.if_then(small, negate=True):
            kb.stg(addr, kb.const_u32(9))
        kb.exit()
        _run(device, kb, [out])
        values = read_u32(device, out, 32)
        assert (values[:10] == 0).all() and (values[10:] == 9).all()

    def test_for_range_static(self, device):
        out = device.malloc(4 * 32)
        kb = KernelBuilder("k", num_params=1)
        i = kb.global_tid_x()
        acc = kb.mov(kb.const_u32(0))
        with kb.for_range(5) as _:
            kb.assign(acc, kb.iadd(acc, i))
        kb.stg(kb.index(kb.param(0), i, 4), acc)
        _run(device, kb, [out])
        assert (read_u32(device, out, 32) == 5 * LANES).all()

    def test_for_range_dynamic_limit(self, device):
        out = device.malloc(4 * 32)
        kb = KernelBuilder("k", num_params=2)
        i = kb.global_tid_x()
        limit = kb.param(1)
        acc = kb.mov(kb.const_u32(0))
        with kb.for_range(limit) as counter:
            kb.assign(acc, kb.iadd(acc, counter))
        kb.stg(kb.index(kb.param(0), i, 4), acc)
        _run(device, kb, [out, 4])
        assert (read_u32(device, out, 32) == 0 + 1 + 2 + 3).all()

    def test_loop_with_divergent_break(self, device):
        out = device.malloc(4 * 32)
        kb = KernelBuilder("k", num_params=1)
        i = kb.global_tid_x()
        count = kb.mov(kb.const_u32(0))
        target = kb.land(i, 3)
        with kb.loop() as loop:
            done = kb.isetp("GE", count, target)
            loop.break_if(done)
            kb.assign(count, kb.iadd(count, 1))
        kb.stg(kb.index(kb.param(0), i, 4), count)
        _run(device, kb, [out])
        assert (read_u32(device, out, 32) == LANES % 4).all()

    def test_exit_if(self, device):
        out = device.malloc(4 * 32)
        write_u32(device, out, np.zeros(32))
        kb = KernelBuilder("k", num_params=1)
        i = kb.global_tid_x()
        kb.exit_if(kb.isetp("GE", i, 16))
        kb.stg(kb.index(kb.param(0), i, 4), kb.const_u32(1))
        _run(device, kb, [out])
        values = read_u32(device, out, 32)
        assert values[:16].sum() == 16 and values[16:].sum() == 0

    def test_barrier_and_shared(self, device):
        out = device.malloc(4 * 32)
        kb = KernelBuilder("k", num_params=1, shared_bytes=128)
        i = kb.tid_x()
        kb.sts(kb.shl(i, 2), i)
        kb.barrier()
        reversed_idx = kb.isub(kb.const_u32(31), i)
        value = kb.lds(kb.shl(reversed_idx, 2), kind="u32")
        kb.stg(kb.index(kb.param(0), i, 4), value)
        _run(device, kb, [out])
        assert (read_u32(device, out, 32) == 31 - LANES).all()


class TestOperandsAndErrors:
    def test_sel(self, device):
        out = device.malloc(4 * 32)
        kb = KernelBuilder("k", num_params=1)
        i = kb.global_tid_x()
        even = kb.isetp("EQ", kb.land(i, 1), 0)
        kb.stg(kb.index(kb.param(0), i, 4),
               kb.sel(kb.const_u32(100), kb.const_u32(200), even))
        _run(device, kb, [out])
        values = read_u32(device, out, 32)
        assert (values == np.where(LANES % 2 == 0, 100, 200)).all()

    def test_mufu_validation(self):
        kb = KernelBuilder("k")
        with pytest.raises(AssemblyError, match="unknown MUFU"):
            kb.mufu("TAN", kb.const_f32(1.0))

    def test_bad_operand_type(self):
        kb = KernelBuilder("k")
        with pytest.raises(AssemblyError, match="integer operand"):
            kb.iadd("banana", 1)

    def test_finish_appends_exit(self):
        kb = KernelBuilder("k")
        kb.const_u32(1)
        text = kb.finish()
        assert text.strip().endswith("EXIT ;")

    def test_directives_emitted(self):
        kb = KernelBuilder("k", num_params=2, shared_bytes=64, local_bytes=8)
        text = kb.finish()
        assert ".params 2" in text
        assert ".shared 64" in text
        assert ".local 8" in text
