"""Linear-scan register allocator tests."""

import pytest

from repro.errors import RegisterAllocationError
from repro.kbuild.regalloc import Interval, allocate


def _iv(vid, kind, start, end):
    return Interval(vid, kind, start, end)


class TestAllocation:
    def test_disjoint_intervals_share_register(self):
        assignment = allocate([_iv(0, "u32", 0, 2), _iv(1, "u32", 3, 5)])
        assert assignment[0] == assignment[1]

    def test_overlapping_intervals_get_distinct_registers(self):
        assignment = allocate([_iv(0, "u32", 0, 5), _iv(1, "u32", 2, 6)])
        assert assignment[0] != assignment[1]

    def test_boundary_overlap_counts_as_live(self):
        # Interval ending at 3 and one starting at 3 must not share.
        assignment = allocate([_iv(0, "u32", 0, 3), _iv(1, "u32", 3, 4)])
        assert assignment[0] != assignment[1]

    def test_pred_and_gp_pools_independent(self):
        assignment = allocate([_iv(0, "u32", 0, 5), _iv(1, "pred", 0, 5)])
        assert assignment[0] == 0 and assignment[1] == 0

    def test_f64_gets_even_pair(self):
        assignment = allocate(
            [_iv(0, "u32", 0, 9), _iv(1, "f64", 0, 9), _iv(2, "u32", 0, 9)]
        )
        assert assignment[1] % 2 == 0
        pair = {assignment[1], assignment[1] + 1}
        assert assignment[0] not in pair and assignment[2] not in pair

    def test_f64_register_reused_after_expiry(self):
        assignment = allocate([_iv(0, "f64", 0, 2), _iv(1, "f64", 4, 6)])
        assert assignment[0] == assignment[1]


class TestExhaustion:
    def test_gp_exhaustion_raises(self):
        intervals = [_iv(i, "u32", 0, 100) for i in range(5)]
        with pytest.raises(RegisterAllocationError, match="out of GP registers"):
            allocate(intervals, max_gp_regs=4)

    def test_pred_exhaustion_raises(self):
        intervals = [_iv(i, "pred", 0, 100) for i in range(8)]
        with pytest.raises(RegisterAllocationError, match="predicate"):
            allocate(intervals, max_preds=7)

    def test_pair_fragmentation_raises(self):
        # With 3 GP regs, a live u32 in R0 leaves R1, R2 — no even pair
        # beyond R2 exists, so R2+R3 is impossible.
        intervals = [_iv(0, "u32", 0, 10), _iv(1, "u32", 0, 10), _iv(2, "f64", 1, 10)]
        with pytest.raises(RegisterAllocationError, match="even-aligned"):
            allocate(intervals, max_gp_regs=3)
