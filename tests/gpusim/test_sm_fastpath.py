"""The SM's hooks-free fast path and pre-resolved handler tables.

Uninstrumented launches (golden runs, every non-target launch of an
injection run) dispatch through ``_run_slice_fast``: no per-pc hook
lookups, and each instruction's handler resolved once per kernel instead
of ``HANDLERS.get(opcode)`` per dynamic instruction.  These tests pin the
invariant that the fast path is an *optimisation only* — counts, state and
trap behaviour are identical to the instrumented path.
"""

import pytest

from repro.core.profiler import ProfilerTool, ProfilingMode
from repro.errors import DeviceTrap
from repro.gpusim.device import Device
from repro.gpusim.sm import _CONTROL, _handler_table
from repro.nvbit.instr import IPoint
from repro.nvbit.tool import NVBitTool
from repro.runner.app import AppContext, Application
from repro.runner.sandbox import run_app
from repro.sass import assemble

_KERNEL = """
.kernel mixed
.params 1
    MOV R1, RZ ;
    MOV R2, c[0x0][0x0] ;
    PBK DONE ;
LOOP:
    ISETP.GE P0, R1, R2 ;
@P0 BRK ;
    IADD R1, R1, 1 ;
    BRA LOOP ;
DONE:
    EXIT ;
"""


class MixedApp(Application):
    name = "sm_fastpath_app"

    def run(self, ctx: AppContext) -> None:
        module = ctx.cuda.load_module(_KERNEL)
        func = ctx.cuda.get_function(module, "mixed")
        for count in (3, 7):
            ctx.cuda.launch(func, 2, 48, count)


class _NoopTool(NVBitTool):
    """Instruments every instruction with a do-nothing callback, forcing
    every launch down the hooked (slow) dispatch path."""

    name = "noop"

    def nvbit_at_cuda_event(self, driver, event, payload, is_exit) -> None:
        from repro.cuda.driver import CudaEvent

        if event is CudaEvent.LAUNCH_KERNEL and not is_exit:
            for instr in self.nvbit.get_instrs(payload.func):
                instr.insert_call(lambda site: None, IPoint.AFTER)
            self.nvbit.enable_instrumented(payload.func, True)


class TestFastPathParity:
    def test_dynamic_counts_match_hooked_path(self):
        """The fast path must retire exactly the instructions the hooked
        path retires (instrumentation charges cycles, never instructions)."""
        fast = run_app(MixedApp())
        hooked = run_app(MixedApp(), preload=[_NoopTool()])
        assert fast.instructions_executed == hooked.instructions_executed
        assert fast.warps_launched == hooked.warps_launched
        assert (
            fast.divergence_depth_high_water
            == hooked.divergence_depth_high_water
        )

    def test_profiled_counts_unchanged(self):
        """The profiler (hooked path) still sees every executed lane; its
        total equals the uninstrumented run's retirement count scaled by
        active lanes — pinned here via two identical profiling runs."""
        profiler_a = ProfilerTool(ProfilingMode.EXACT)
        profiler_b = ProfilerTool(ProfilingMode.EXACT)
        run_app(MixedApp(), preload=[profiler_a])
        run_app(MixedApp(), preload=[profiler_b])
        assert profiler_a.profile.to_text() == profiler_b.profile.to_text()
        assert profiler_a.profile.total_count() > 0


class TestHandlerTable:
    def test_table_cached_on_kernel(self):
        kernel = assemble(_KERNEL).get("mixed")
        table = _handler_table(kernel)
        assert _handler_table(kernel) is table
        assert len(table) == len(kernel.instructions)

    def test_table_rebuilt_when_instructions_change(self):
        kernel = assemble(_KERNEL).get("mixed")
        table = _handler_table(kernel)
        kernel.instructions = kernel.instructions[:-1]
        rebuilt = _handler_table(kernel)
        assert rebuilt is not table
        assert len(rebuilt) == len(kernel.instructions)

    def test_table_rebuilt_on_same_length_rewrite(self):
        """Regression: the cache historically keyed on length alone, so an
        in-place rewrite of equal length kept serving stale dispatch.  The
        identity check must catch a single swapped instruction."""
        kernel = assemble(_KERNEL).get("mixed")
        donor = assemble(_KERNEL.replace("IADD R1, R1, 1", "MOV R1, R2")).get(
            "mixed"
        )
        table = _handler_table(kernel)
        index = next(
            i for i, instr in enumerate(kernel.instructions)
            if instr.opcode == "IADD"
        )
        kernel.instructions[index] = donor.instructions[index]
        rebuilt = _handler_table(kernel)
        assert rebuilt is not table
        assert rebuilt[index] is not table[index]

    def test_control_opcodes_marked(self):
        kernel = assemble(_KERNEL).get("mixed")
        table = _handler_table(kernel)
        opcodes = [instr.opcode for instr in kernel.instructions]
        for opcode, entry in zip(opcodes, table):
            if opcode in ("PBK", "BRK", "BRA", "EXIT"):
                assert entry is _CONTROL
            else:
                assert callable(entry) and entry is not _CONTROL

    def test_unknown_opcode_traps_only_when_executed(self, device=None):
        """Pre-resolution must not turn load-time resolution failures into
        launch-time errors: an unexecuted unknown opcode stays harmless."""
        device = Device(num_sms=1, global_mem_bytes=1 << 20)
        benign = assemble(
            ".kernel k\n    BRA END ;\n    HADD2 R0, R1, R2 ;\nEND:\n    EXIT ;"
        ).get("k")
        device.launch(benign, 1, 32, [])  # jumps over the unknown opcode

        trapping = assemble(
            ".kernel k\n    HADD2 R0, R1, R2 ;\n    EXIT ;"
        ).get("k")
        with pytest.raises(DeviceTrap, match="no execution semantics"):
            device.launch(trapping, 1, 32, [])
