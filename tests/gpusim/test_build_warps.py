"""Pin test for the vectorised warp construction in ``repro.gpusim.sm``.

``_build_warps`` builds all thread-id components and valid masks for a
block with one pad-and-reshape instead of one ``np.concatenate`` per warp
per component.  This test pins bit-equality of the produced warps against
the straightforward per-warp reference construction the vectorised code
replaced, across block shapes that exercise every padding case.
"""

import numpy as np
import pytest

from repro.gpusim.context import ExecContext
from repro.gpusim.sm import _build_warps
from repro.gpusim.warp import Warp
from repro.sass import assemble
from repro.sass.isa import WARP_SIZE

_KERNEL = assemble(
    """
.kernel pin
.params 1
    S2R R1, SR_TID.X ;
    EXIT ;
"""
).get("pin")


def _ctx(ntid) -> ExecContext:
    # _build_warps reads only ctx.ntid; the memory spaces are irrelevant
    # to construction and stay unbound here.
    return ExecContext(
        global_mem=None,
        shared=None,
        const=None,
        ctaid=(0, 0, 0),
        ntid=ntid,
        nctaid=(1, 1, 1),
        sm_id=0,
        grid_id=0,
        clock=lambda: 0,
    )


def _reference_warps(kernel, ctx) -> list[Warp]:
    """The pre-vectorisation construction: one concatenate per warp per
    thread-id component, zero-padded to WARP_SIZE."""
    bx, by, bz = ctx.ntid
    total = bx * by * bz
    num_warps = -(-total // WARP_SIZE)
    warps = []
    for warp_id in range(num_warps):
        lanes = np.arange(
            warp_id * WARP_SIZE,
            min((warp_id + 1) * WARP_SIZE, total),
            dtype=np.int64,
        )
        pad = WARP_SIZE - lanes.size
        def padded(component):
            return np.concatenate(
                [component.astype(np.uint32), np.zeros(pad, dtype=np.uint32)]
            )
        valid = np.concatenate(
            [np.ones(lanes.size, dtype=bool), np.zeros(pad, dtype=bool)]
        )
        warp = Warp(
            warp_id=warp_id,
            num_regs=kernel.num_regs,
            valid_mask=valid,
            tid=(
                padded(lanes % bx),
                padded(lanes // bx % by),
                padded(lanes // (bx * by)),
            ),
            local_bytes=kernel.local_bytes,
        )
        warp.ctx = ctx
        warps.append(warp)
    return warps


@pytest.mark.parametrize(
    "ntid",
    [
        (1, 1, 1),  # one thread: 31 padded lanes
        (32, 1, 1),  # exactly one full warp
        (33, 1, 1),  # one full warp + one lane
        (70, 1, 1),  # partial tail warp
        (16, 3, 2),  # 3-D shape, exact warp multiple
        (8, 8, 2),  # 3-D shape, wide y
        (7, 5, 3),  # 3-D shape, every component odd
    ],
)
def test_matches_reference_construction(ntid):
    ctx = _ctx(ntid)
    built = _build_warps(_KERNEL, ctx)
    reference = _reference_warps(_KERNEL, ctx)
    assert len(built) == len(reference)
    for new, old in zip(built, reference):
        assert new.warp_id == old.warp_id
        assert np.array_equal(new.valid, old.valid)
        assert np.array_equal(new.active, old.active)
        assert np.array_equal(new.exited, old.exited)
        assert new.done == old.done
        for axis in ("tid_x", "tid_y", "tid_z"):
            assert getattr(new, axis).dtype == getattr(old, axis).dtype
            assert np.array_equal(getattr(new, axis), getattr(old, axis))


def test_valid_masks_are_independent_per_warp():
    """Row views of one block-wide array back the masks; mutating one
    warp's execution state must never leak into another (Warp copies its
    ``valid_mask`` argument and derives ``exited`` freshly)."""
    ctx = _ctx((40, 1, 1))
    first, second = _build_warps(_KERNEL, ctx)
    first.valid[:] = False
    first.active[:] = False
    first.exited[:] = True  # everything in warp 0 exits
    assert second.valid.sum() == 8  # warp 1 keeps its 8 live lanes
    assert second.exited.sum() == WARP_SIZE - 8  # only its padded lanes
