"""Semantics tests: FP32 opcodes."""

import numpy as np

from tests.gpusim.helpers import fbits, lanes_f32, run_lanes

LANES = np.arange(32, dtype=np.float32)


class TestArithmetic:
    def test_fadd(self, device):
        body = f"    I2F R1, R50 ;\n    FADD R0, R1, {fbits(0.5)} ;"
        assert np.allclose(lanes_f32(run_lanes(device, body)), LANES + 0.5)

    def test_fadd_negated_operand(self, device):
        body = f"    I2F R1, R50 ;\n    FADD R0, {fbits(10.0)}, -R1 ;"
        assert np.allclose(lanes_f32(run_lanes(device, body)), 10.0 - LANES)

    def test_fadd_abs_operand(self, device):
        body = (
            f"    I2F R1, R50 ;\n    FADD R2, {fbits(-100.0)}, R1 ;\n"
            "    FADD R0, |R2|, RZ ;"
        )
        assert np.allclose(lanes_f32(run_lanes(device, body)), np.abs(LANES - 100.0))

    def test_fmul(self, device):
        body = f"    I2F R1, R50 ;\n    FMUL R0, R1, {fbits(2.5)} ;"
        assert np.allclose(lanes_f32(run_lanes(device, body)), LANES * 2.5)

    def test_ffma(self, device):
        body = (
            f"    I2F R1, R50 ;\n    FFMA R0, R1, {fbits(3.0)}, {fbits(-1.0)} ;"
        )
        assert np.allclose(lanes_f32(run_lanes(device, body)), LANES * 3.0 - 1.0)

    def test_fmnmx(self, device):
        body = f"    I2F R1, R50 ;\n    FMNMX.MAX R0, R1, {fbits(15.5)} ;"
        assert np.allclose(
            lanes_f32(run_lanes(device, body)), np.maximum(LANES, 15.5)
        )

    def test_fsel(self, device):
        body = (
            "    ISETP.LT P0, R50, 10 ;\n"
            f"    FSEL R0, {fbits(1.0)}, {fbits(-1.0)}, P0 ;"
        )
        out = lanes_f32(run_lanes(device, body))
        assert np.allclose(out, np.where(np.arange(32) < 10, 1.0, -1.0))

    def test_fsetp(self, device):
        body = (
            f"    I2F R1, R50 ;\n    FSETP.GT P0, R1, {fbits(20.0)} ;\n"
            "    MOV R0, RZ ;\n@P0 MOV R0, 1 ;"
        )
        assert (run_lanes(device, body) == (LANES > 20.0)).all()


class TestMufu:
    def test_rcp(self, device):
        body = f"    MOV32I R1, {fbits(4.0)} ;\n    MUFU.RCP R0, R1 ;"
        assert np.allclose(lanes_f32(run_lanes(device, body)), 0.25)

    def test_rcp_of_zero_is_inf(self, device):
        body = "    MUFU.RCP R0, RZ ;"
        assert np.isinf(lanes_f32(run_lanes(device, body))).all()

    def test_sqrt(self, device):
        body = f"    MOV32I R1, {fbits(9.0)} ;\n    MUFU.SQRT R0, R1 ;"
        assert np.allclose(lanes_f32(run_lanes(device, body)), 3.0)

    def test_rsq(self, device):
        body = f"    MOV32I R1, {fbits(16.0)} ;\n    MUFU.RSQ R0, R1 ;"
        assert np.allclose(lanes_f32(run_lanes(device, body)), 0.25)

    def test_sin_cos(self, device):
        sin = lanes_f32(run_lanes(device, "    I2F R1, R50 ;\n    MUFU.SIN R0, R1 ;"))
        cos = lanes_f32(run_lanes(device, "    I2F R1, R50 ;\n    MUFU.COS R0, R1 ;"))
        assert np.allclose(sin, np.sin(LANES), atol=1e-6)
        assert np.allclose(cos, np.cos(LANES), atol=1e-6)

    def test_ex2_lg2(self, device):
        ex2 = lanes_f32(run_lanes(device, "    I2F R1, R50 ;\n    MUFU.EX2 R0, R1 ;"))
        assert np.allclose(ex2[:20], np.exp2(LANES[:20]), rtol=1e-6)
        body = f"    MOV32I R1, {fbits(8.0)} ;\n    MUFU.LG2 R0, R1 ;"
        assert np.allclose(lanes_f32(run_lanes(device, body)), 3.0)


class TestConversions:
    def test_i2f_signed(self, device):
        body = "    MOV32I R1, 0xffffffff ;\n    I2F R0, R1 ;"
        assert np.allclose(lanes_f32(run_lanes(device, body)), -1.0)

    def test_i2f_unsigned(self, device):
        body = "    MOV32I R1, 0xffffffff ;\n    I2F.U32 R0, R1 ;"
        assert np.allclose(lanes_f32(run_lanes(device, body)), 4294967295.0)

    def test_f2i_truncates(self, device):
        body = f"    MOV32I R1, {fbits(3.9)} ;\n    F2I R0, R1 ;"
        assert (run_lanes(device, body) == 3).all()

    def test_f2i_negative(self, device):
        body = f"    MOV32I R1, {fbits(-2.7)} ;\n    F2I R0, R1 ;"
        assert (run_lanes(device, body).astype(np.int32) == -2).all()

    def test_f2i_u32_clamps_negative_to_zero(self, device):
        body = f"    MOV32I R1, {fbits(-5.0)} ;\n    F2I.U32 R0, R1 ;"
        assert (run_lanes(device, body) == 0).all()

    def test_f2i_nan_is_zero(self, device):
        body = "    MOV32I R1, 0x7fc00000 ;\n    F2I R0, R1 ;"
        assert (run_lanes(device, body) == 0).all()

    def test_f2f_floor_ceil_trunc(self, device):
        for mode, fn in (("FLOOR", np.floor), ("CEIL", np.ceil), ("TRUNC", np.trunc)):
            body = f"    MOV32I R1, {fbits(-2.5)} ;\n    F2F.{mode} R0, R1 ;"
            assert np.allclose(lanes_f32(run_lanes(device, body)), fn(-2.5)), mode

    def test_nan_propagates_through_fadd(self, device):
        body = "    MOV32I R1, 0x7fc00000 ;\n    FADD R0, R1, 1.0f ;"
        assert np.isnan(lanes_f32(run_lanes(device, body))).all()
