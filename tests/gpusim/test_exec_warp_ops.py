"""Semantics tests: warp-wide ops (SHFL, VOTE), predicates, special registers."""

import numpy as np

from repro.sass import assemble
from tests.conftest import read_u32
from tests.gpusim.helpers import run_lanes

LANES = np.arange(32, dtype=np.int64)


class TestShfl:
    def test_idx_broadcast(self, device):
        out = run_lanes(device, "    SHFL.IDX R0, R50, 5 ;")
        assert (out == 5).all()

    def test_down(self, device):
        out = run_lanes(device, "    SHFL.DOWN R0, R50, 4 ;")
        expected = np.where(LANES + 4 < 32, LANES + 4, LANES)
        assert (out == expected).all()

    def test_up(self, device):
        out = run_lanes(device, "    SHFL.UP R0, R50, 1 ;")
        expected = np.where(LANES - 1 >= 0, LANES - 1, LANES)
        assert (out == expected).all()

    def test_bfly(self, device):
        out = run_lanes(device, "    SHFL.BFLY R0, R50, 1 ;")
        assert (out == (LANES ^ 1)).all()

    def test_shfl_reduction_sums_warp(self, device):
        body = "    MOV R0, R50 ;\n" + "".join(
            f"    SHFL.DOWN R1, R0, {d} ;\n    IADD R0, R0, R1 ;\n"
            for d in (16, 8, 4, 2, 1)
        )
        out = run_lanes(device, body)
        assert out[0] == sum(range(32))

    def test_inactive_source_lane_keeps_own_value(self, device):
        # Only the first 8 lanes execute the SHFL; lane 4 reading lane 20
        # (inactive) must keep its own value.
        body = (
            "    MOV R0, R50 ;\n"
            "    ISETP.LT P0, R50, 8 ;\n"
            "@P0 SHFL.DOWN R0, R50, 16 ;"
        )
        out = run_lanes(device, body)
        assert (out[:8] == LANES[:8]).all()


class TestVote:
    def test_vote_all_true(self, device):
        body = (
            "    ISETP.GE P1, R50, 0 ;\n"
            "    VOTE.ALL P0, P1 ;\n"
            "    MOV R0, RZ ;\n@P0 MOV R0, 1 ;"
        )
        assert (run_lanes(device, body) == 1).all()

    def test_vote_all_false_when_one_lane_fails(self, device):
        body = (
            "    ISETP.LT P1, R50, 31 ;\n"
            "    VOTE.ALL P0, P1 ;\n"
            "    MOV R0, RZ ;\n@P0 MOV R0, 1 ;"
        )
        assert (run_lanes(device, body) == 0).all()

    def test_vote_any(self, device):
        body = (
            "    ISETP.EQ P1, R50, 17 ;\n"
            "    VOTE.ANY P0, P1 ;\n"
            "    MOV R0, RZ ;\n@P0 MOV R0, 1 ;"
        )
        assert (run_lanes(device, body) == 1).all()


class TestPredicateOps:
    def test_psetp_and(self, device):
        body = (
            "    ISETP.LT P1, R50, 20 ;\n"
            "    ISETP.GE P2, R50, 10 ;\n"
            "    PSETP.AND P0, P1, P2 ;\n"
            "    MOV R0, RZ ;\n@P0 MOV R0, 1 ;"
        )
        out = run_lanes(device, body)
        assert (out == ((LANES >= 10) & (LANES < 20))).all()

    def test_psetp_or_with_negation(self, device):
        body = (
            "    ISETP.LT P1, R50, 4 ;\n"
            "    ISETP.GE P2, R50, 28 ;\n"
            "    PSETP.OR P0, P1, !P2 ;\n"
            "    MOV R0, RZ ;\n@P0 MOV R0, 1 ;"
        )
        out = run_lanes(device, body)
        assert (out == ((LANES < 4) | (LANES < 28))).all()

    def test_p2r_r2p_roundtrip(self, device):
        body = (
            "    ISETP.EQ P3, R50, R50 ;\n"  # P3 = true
            "    P2R R1 ;\n"
            "    R2P PT, R1 ;\n"  # PT slot is syntactic; R2P writes P0..P6
            "    MOV R0, RZ ;\n@P3 MOV R0, 1 ;"
        )
        assert (run_lanes(device, body) == 1).all()


class TestSpecialRegisters:
    def test_laneid(self, device):
        assert (run_lanes(device, "    S2R R0, SR_LANEID ;") == LANES).all()

    def test_tid_and_ctaid_2d(self, device):
        text = """
.kernel k
.params 1
    S2R R1, SR_TID.X ;
    S2R R2, SR_TID.Y ;
    S2R R3, SR_NTID.X ;
    IMAD R4, R2, R3, R1 ;
    S2R R5, SR_CTAID.X ;
    S2R R6, SR_NTID.Y ;
    IMUL R7, R3, R6 ;
    IMAD R8, R5, R7, R4 ;
    MOV R9, c[0x0][0x0] ;
    ISCADD R10, R8, R9, 2 ;
    STG.32 [R10], R8 ;
    EXIT ;
"""
        out = device.malloc(4 * 64)
        device.launch(assemble(text).get("k"), (2, 1, 1), (8, 4, 1), [out])
        assert (read_u32(device, out, 64) == np.arange(64)).all()

    def test_nctaid(self, device):
        out = run_lanes(device, "    S2R R0, SR_NCTAID.X ;")
        assert (out == 1).all()

    def test_smid_matches_round_robin(self, device):
        text = """
.kernel k
.params 1
    S2R R1, SR_SMID ;
    S2R R2, SR_CTAID.X ;
    MOV R3, c[0x0][0x0] ;
    ISCADD R4, R2, R3, 2 ;
    S2R R5, SR_TID.X ;
    ISETP.EQ P0, R5, 0 ;
@!P0 EXIT ;
    STG.32 [R4], R1 ;
    EXIT ;
"""
        out = device.malloc(4 * 8)
        device.launch(assemble(text).get("k"), 8, 32, [out])
        sm_ids = read_u32(device, out, 8)
        assert (sm_ids == np.arange(8) % device.num_sms).all()

    def test_warpid(self, device):
        text = """
.kernel k
.params 1
    S2R R1, SR_WARPID ;
    S2R R2, SR_TID.X ;
    MOV R3, c[0x0][0x0] ;
    ISCADD R4, R2, R3, 2 ;
    STG.32 [R4], R1 ;
    EXIT ;
"""
        out = device.malloc(4 * 64)
        device.launch(assemble(text).get("k"), 1, 64, [out])
        warps = read_u32(device, out, 64)
        assert (warps[:32] == 0).all() and (warps[32:] == 1).all()

    def test_cs2r_srz(self, device):
        assert (run_lanes(device, "    CS2R R0, SRZ ;") == 0).all()

    def test_clock_monotone(self, device):
        body = "    CS2R R1, SR_CLOCK ;\n    NOP ;\n    CS2R R2, SR_CLOCK ;\n    IADD R0, R2, -R1 ;"
        out = run_lanes(device, body)
        assert (out.astype(np.int32) > 0).all()

    def test_writes_to_rz_discarded(self, device):
        body = "    MOV RZ, 123 ;\n    MOV R0, RZ ;"
        assert (run_lanes(device, body) == 0).all()

    def test_writes_to_pt_discarded(self, device):
        body = (
            "    ISETP.LT PT, R50, 0 ;\n"  # would make PT false
            "    MOV R0, RZ ;\n@PT MOV R0, 1 ;"
        )
        assert (run_lanes(device, body) == 1).all()
