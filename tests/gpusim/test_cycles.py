"""Simulated-time model tests: the cycle accounting behind Figures 4/5."""


from repro.cuda.driver import CudaEvent
from repro.cuda.runtime import CudaRuntime
from repro.gpusim import Device
from repro.gpusim.device import (
    INSTRUMENTATION_FIXED_CYCLES,
    INSTRUMENTATION_PER_THREAD_CYCLES,
    JIT_COMPILE_CYCLES,
)
from repro.nvbit import IPoint, NVBitRuntime, NVBitTool

_KERNEL = """
.kernel tick
.params 0
    NOP ;
    NOP ;
    NOP ;
    EXIT ;
"""


class InstrumentEverything(NVBitTool):
    def __init__(self, enable=True):
        super().__init__()
        self.enable = enable
        self._done = set()

    def nvbit_at_cuda_event(self, driver, event, payload, is_exit):
        if event is CudaEvent.LAUNCH_KERNEL and not is_exit:
            if payload.func not in self._done:
                self._done.add(payload.func)
                for instr in self.nvbit.get_instrs(payload.func):
                    instr.insert_call(lambda s: None, IPoint.AFTER)
            self.nvbit.enable_instrumented(payload.func, self.enable)


def _run(tool=None, launches=1, block=32):
    device = Device(num_sms=2, global_mem_bytes=1 << 20)
    interceptor = NVBitRuntime([tool]) if tool else None
    runtime = CudaRuntime(device, interceptor=interceptor)
    module = runtime.load_module(_KERNEL)
    func = runtime.get_function(module, "tick")
    for _ in range(launches):
        runtime.launch(func, 1, block)
    return device


class TestCycleAccounting:
    def test_uninstrumented_cycles_equal_instructions(self):
        device = _run()
        assert device.cycles == device.instructions_executed == 4

    def test_instrumented_cycles_include_trampoline_and_threads(self):
        device = _run(InstrumentEverything())
        base = 4  # warp-instructions
        per_hook = INSTRUMENTATION_FIXED_CYCLES + 32 * INSTRUMENTATION_PER_THREAD_CYCLES
        expected = base + 4 * per_hook + JIT_COMPILE_CYCLES
        assert device.cycles == expected

    def test_partial_warp_charges_fewer_thread_cycles(self):
        full = _run(InstrumentEverything(), block=32).cycles
        partial = _run(InstrumentEverything(), block=8).cycles
        assert partial < full
        # 3 NOPs + EXIT, 8 active threads each (EXIT removes lanes after).
        assert full - partial == 4 * 24 * INSTRUMENTATION_PER_THREAD_CYCLES

    def test_jit_charged_once_across_launches(self):
        device = _run(InstrumentEverything(), launches=3)
        per_hook = INSTRUMENTATION_FIXED_CYCLES + 32 * INSTRUMENTATION_PER_THREAD_CYCLES
        expected = 3 * (4 + 4 * per_hook) + JIT_COMPILE_CYCLES
        assert device.cycles == expected

    def test_disabled_instrumentation_costs_nothing(self):
        device = _run(InstrumentEverything(enable=False))
        assert device.cycles == 4

    def test_watchdog_counts_instructions_not_cycles(self):
        """Instrumentation cost must never trip the hang detector."""
        device = Device(num_sms=1, instruction_budget=10)
        tool = InstrumentEverything()
        runtime = CudaRuntime(device, interceptor=NVBitRuntime([tool]))
        module = runtime.load_module(_KERNEL)
        func = runtime.get_function(module, "tick")
        runtime.launch(func, 1, 32)  # 4 instrs but >5000 cycles: fine
        assert device.instructions_executed == 4
        assert device.cycles > 5000
