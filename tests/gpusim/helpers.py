"""Harness for instruction-semantics tests.

``run_lanes`` wraps a SASS body in a one-warp kernel that stores R0 (or a
register pair) per lane to an output buffer, and returns the 32 lane
values.  The body sees the lane's thread id in R50.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim import Device
from repro.sass import assemble
from repro.utils.bits import f32_to_bits


def run_lanes(
    device: Device,
    body: str,
    params: list[int] | None = None,
    result_reg: str = "R0",
    pair: bool = False,
    block: int = 32,
) -> np.ndarray:
    """Run ``body`` on one warp; returns each lane's ``result_reg`` value.

    Extra ``params`` appear at c[0x0][0x4], c[0x0][0x8], ...
    """
    params = list(params or [])
    out = device.malloc(8 * block)
    width = "64" if pair else "32"
    shift = 3 if pair else 2
    text = f"""
.kernel harness
.params {1 + len(params)}
    S2R R50, SR_TID.X ;
    MOV R51, c[0x0][0x0] ;
    ISCADD R52, R50, R51, {shift} ;
{body}
    STG.{width} [R52], {result_reg} ;
    EXIT ;
"""
    kernel = assemble(text).get("harness")
    device.launch(kernel, 1, block, [out] + params)
    if pair:
        raw = device.global_mem.read_bytes(out, 8 * block)
        return np.frombuffer(raw, dtype=np.uint64)[:block]
    raw = device.global_mem.read_bytes(out, 4 * block)
    return np.frombuffer(raw, dtype=np.uint32)[:block]


def lanes_f32(values: np.ndarray) -> np.ndarray:
    return values.astype(np.uint32).view(np.float32)


def lanes_f64(values: np.ndarray) -> np.ndarray:
    return values.astype(np.uint64).view(np.float64)


def fbits(value: float) -> int:
    return f32_to_bits(value)
