"""Device-level tests: launch validation, scheduling, barriers, dmesg."""

import numpy as np
import pytest

from repro.arch.families import ARCH_FAMILIES, arch_by_name
from repro.errors import LaunchError
from repro.gpusim import Device
from repro.sass import assemble
from tests.conftest import read_u32

_STORE_TID = """
.kernel k
.params 1
    S2R R1, SR_TID.X ;
    S2R R2, SR_CTAID.X ;
    S2R R3, SR_NTID.X ;
    IMAD R4, R2, R3, R1 ;
    MOV R5, c[0x0][0x0] ;
    ISCADD R6, R4, R5, 2 ;
    STG.32 [R6], R4 ;
    EXIT ;
"""


class TestLaunchValidation:
    def test_too_many_threads(self, device):
        kernel = assemble(".kernel k\nEXIT ;").get("k")
        with pytest.raises(LaunchError, match="exceeds"):
            device.launch(kernel, 1, 2048, [])

    def test_empty_grid(self, device):
        kernel = assemble(".kernel k\nEXIT ;").get("k")
        with pytest.raises(LaunchError, match="empty launch"):
            device.launch(kernel, 0, 32, [])

    def test_missing_params(self, device):
        kernel = assemble(".kernel k\n.params 2\nEXIT ;").get("k")
        with pytest.raises(LaunchError, match="expects 2 params"):
            device.launch(kernel, 1, 32, [1])

    def test_shared_limit(self, device):
        kernel = assemble(".kernel k\n.shared 65536\nEXIT ;").get("k")
        with pytest.raises(LaunchError, match="shared memory"):
            device.launch(kernel, 1, 32, [])

    def test_int_and_tuple_dims_equivalent(self, device):
        out1 = device.malloc(4 * 64)
        out2 = device.malloc(4 * 64)
        kernel = assemble(_STORE_TID).get("k")
        device.launch(kernel, 2, 32, [out1])
        device.launch(kernel, (2, 1, 1), (32, 1, 1), [out2])
        assert (read_u32(device, out1, 64) == read_u32(device, out2, 64)).all()


class TestScheduling:
    def test_multi_block_coverage(self, device):
        out = device.malloc(4 * 256)
        device.launch(assemble(_STORE_TID).get("k"), 8, 32, [out])
        assert (read_u32(device, out, 256) == np.arange(256)).all()

    def test_active_sms_recorded(self, device):
        out = device.malloc(4 * 256)
        device.launch(assemble(_STORE_TID).get("k"), 3, 32, [out])
        assert device.active_sms == {0, 1, 2}

    def test_instruction_counting(self, device):
        before = device.instructions_executed
        device.launch(assemble(".kernel k\nNOP ;\nEXIT ;").get("k"), 2, 64, [])
        # 2 blocks x 2 warps x 2 instructions = 8 warp-instructions
        assert device.instructions_executed - before == 8

    def test_launch_count_and_grid_id(self, device):
        kernel = assemble(".kernel k\nEXIT ;").get("k")
        device.launch(kernel, 1, 1, [])
        device.launch(kernel, 1, 1, [])
        assert device.launch_count == 2


class TestBarriers:
    def test_inter_warp_communication(self, device):
        # Warp 1 reads what warp 0 wrote before the barrier.
        text = """
.kernel k
.params 1
.shared 256
    S2R R1, SR_TID.X ;
    SHL R2, R1, 2 ;
    STS.32 [R2], R1 ;
    BAR.SYNC ;
    MOV R3, 63 ;
    IADD R4, R3, -R1 ;
    SHL R5, R4, 2 ;
    LDS.32 R6, [R5] ;
    MOV R7, c[0x0][0x0] ;
    ISCADD R8, R1, R7, 2 ;
    STG.32 [R8], R6 ;
    EXIT ;
"""
        out = device.malloc(4 * 64)
        device.launch(assemble(text).get("k"), 1, 64, [out])
        assert (read_u32(device, out, 64) == np.arange(63, -1, -1)).all()

    def test_barrier_with_exited_warp(self, device):
        # Warp 1 exits before the barrier; warp 0 must not deadlock.
        text = """
.kernel k
.params 1
    S2R R1, SR_TID.X ;
    ISETP.GE P0, R1, 32 ;
@P0 EXIT ;
    BAR.SYNC ;
    MOV R2, c[0x0][0x0] ;
    ISCADD R3, R1, R2, 2 ;
    MOV R4, 1 ;
    STG.32 [R3], R4 ;
    EXIT ;
"""
        out = device.malloc(4 * 64)
        device.launch(assemble(text).get("k"), 1, 64, [out])
        assert (read_u32(device, out, 32) == 1).all()


class TestArchFamilies:
    def test_all_families_construct(self):
        for name in ARCH_FAMILIES:
            device = Device(family=name, num_sms=2)
            assert device.arch.name == name

    def test_unknown_family(self):
        with pytest.raises(KeyError, match="unknown architecture"):
            arch_by_name("hopper2")

    def test_default_num_sms_from_family(self):
        assert Device(family="volta").num_sms == 80
        assert Device(family="kepler").num_sms == 15

    def test_same_kernel_runs_on_all_families(self):
        """The architectural-abstraction claim: one binary, all families."""
        kernel = assemble(_STORE_TID).get("k")
        results = []
        for name in ARCH_FAMILIES:
            device = Device(family=name, num_sms=4)
            out = device.malloc(4 * 64)
            device.launch(kernel, 2, 32, [out])
            results.append(read_u32(device, out, 64))
        for result in results[1:]:
            assert (result == results[0]).all()
