"""SIMT divergence-stack tests: SSY/SYNC, PBK/BRK, predicated EXIT."""

import numpy as np
import pytest

from repro.errors import DeviceTrap, WatchdogTimeout
from repro.sass import assemble
from tests.conftest import read_u32
from tests.gpusim.helpers import run_lanes

LANES = np.arange(32, dtype=np.int64)


class TestIfThen:
    def test_divergent_branch_reconverges(self, device):
        body = """
    MOV R0, 100 ;
    ISETP.LT P0, R50, 16 ;
    SSY RECONV ;
@!P0 BRA SKIP ;
    IADD R0, R0, 1 ;
SKIP:
    SYNC ;
RECONV:
    IADD R0, R0, 1000 ;
"""
        out = run_lanes(device, body)
        expected = np.where(LANES < 16, 1101, 1100)
        assert (out == expected).all()

    def test_uniform_taken_branch(self, device):
        body = """
    MOV R0, RZ ;
    ISETP.GE P0, R50, 0 ;
    SSY RECONV ;
@!P0 BRA SKIP ;
    IADD R0, R0, 1 ;
SKIP:
    SYNC ;
RECONV:
    IADD R0, R0, 10 ;
"""
        assert (run_lanes(device, body) == 11).all()

    def test_uniform_not_taken_branch(self, device):
        body = """
    MOV R0, RZ ;
    ISETP.LT P0, R50, 0 ;
    SSY RECONV ;
@!P0 BRA SKIP ;
    IADD R0, R0, 1 ;
SKIP:
    SYNC ;
RECONV:
    IADD R0, R0, 10 ;
"""
        assert (run_lanes(device, body) == 10).all()

    def test_if_else(self, device):
        body = """
    ISETP.LT P0, R50, 8 ;
    SSY RECONV ;
@!P0 BRA ELSE ;
    MOV R0, 111 ;
    SYNC ;
ELSE:
    MOV R0, 222 ;
    SYNC ;
RECONV:
    IADD R0, R0, 1 ;
"""
        out = run_lanes(device, body)
        assert (out == np.where(LANES < 8, 112, 223)).all()

    def test_nested_divergence(self, device):
        body = """
    MOV R0, RZ ;
    ISETP.LT P0, R50, 16 ;
    SSY OUTER ;
@!P0 BRA OSKIP ;
    ISETP.LT P1, R50, 8 ;
    SSY INNER ;
@!P1 BRA ISKIP ;
    IADD R0, R0, 1 ;
ISKIP:
    SYNC ;
INNER:
    IADD R0, R0, 10 ;
OSKIP:
    SYNC ;
OUTER:
    IADD R0, R0, 100 ;
"""
        out = run_lanes(device, body)
        expected = np.where(LANES < 8, 111, np.where(LANES < 16, 110, 100))
        assert (out == expected).all()


class TestLoops:
    def test_uniform_loop(self, device):
        body = """
    MOV R0, RZ ;
    MOV R1, RZ ;
    PBK DONE ;
LOOP:
    ISETP.GE P0, R1, 5 ;
@P0 BRK ;
    IADD R0, R0, 2 ;
    IADD R1, R1, 1 ;
    BRA LOOP ;
DONE:
    IADD R0, R0, 1000 ;
"""
        assert (run_lanes(device, body) == 1010).all()

    def test_divergent_trip_counts(self, device):
        # Lane i iterates i&7 times; all lanes must reconverge at DONE.
        body = """
    MOV R0, RZ ;
    MOV R1, RZ ;
    LOP.AND R2, R50, 7 ;
    PBK DONE ;
LOOP:
    ISETP.GE P0, R1, R2 ;
@P0 BRK ;
    IADD R0, R0, 1 ;
    IADD R1, R1, 1 ;
    BRA LOOP ;
DONE:
    IADD R0, R0, 100 ;
"""
        out = run_lanes(device, body)
        assert (out == (LANES & 7) + 100).all()

    def test_divergence_inside_loop(self, device):
        # Odd lanes add 1 per iteration, even lanes add 2; 4 iterations.
        body = """
    MOV R0, RZ ;
    MOV R1, RZ ;
    LOP.AND R2, R50, 1 ;
    ISETP.EQ P1, R2, 0 ;
    PBK DONE ;
LOOP:
    ISETP.GE P0, R1, 4 ;
@P0 BRK ;
    SSY NEXT ;
@!P1 BRA ODD ;
    IADD R0, R0, 2 ;
    SYNC ;
ODD:
    IADD R0, R0, 1 ;
    SYNC ;
NEXT:
    IADD R1, R1, 1 ;
    BRA LOOP ;
DONE:
    NOP ;
"""
        out = run_lanes(device, body)
        assert (out == np.where(LANES % 2 == 0, 8, 4)).all()


class TestExit:
    def test_predicated_exit_removes_lanes(self, device):
        # Lanes >= 16 exit before the store; their output slots stay zero.
        text = """
.kernel k
.params 1
    S2R R1, SR_TID.X ;
    ISETP.GE P0, R1, 16 ;
@P0 EXIT ;
    MOV R2, c[0x0][0x0] ;
    ISCADD R3, R1, R2, 2 ;
    MOV R4, 7 ;
    STG.32 [R3], R4 ;
    EXIT ;
"""
        out = device.malloc(4 * 32)
        device.launch(assemble(text).get("k"), 1, 32, [out])
        values = read_u32(device, out, 32)
        assert (values[:16] == 7).all() and (values[16:] == 0).all()

    def test_exit_inside_divergent_region(self, device):
        # Lanes < 8 exit inside the taken path; others still reconverge.
        body = """
    MOV R0, RZ ;
    ISETP.LT P0, R50, 16 ;
    SSY RECONV ;
@!P0 BRA SKIP ;
    ISETP.LT P1, R50, 8 ;
@P1 EXIT ;
    IADD R0, R0, 1 ;
SKIP:
    SYNC ;
RECONV:
    IADD R0, R0, 100 ;
"""
        out = run_lanes(device, body)
        expected = np.where(
            LANES < 8, 0, np.where(LANES < 16, 101, 100)
        )
        assert (out == expected).all()

    def test_partial_block_padding_lanes_inactive(self, device):
        text = """
.kernel k
.params 1
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    ISCADD R3, R1, R2, 2 ;
    MOV R4, 1 ;
    STG.32 [R3], R4 ;
    EXIT ;
"""
        out = device.malloc(4 * 32)
        device.launch(assemble(text).get("k"), 1, 20, [out])  # 20 < warp size
        values = read_u32(device, out, 32)
        assert (values[:20] == 1).all() and (values[20:] == 0).all()


class TestStackErrors:
    def test_sync_without_ssy_traps(self, device):
        kernel = assemble(".kernel k\n    SYNC ;\n    EXIT ;").get("k")
        with pytest.raises(DeviceTrap, match="no SSY"):
            device.launch(kernel, 1, 32, [])

    def test_brk_without_pbk_traps(self, device):
        kernel = assemble(
            ".kernel k\n    ISETP.EQ P0, RZ, RZ ;\n@P0 BRK ;\n    EXIT ;"
        ).get("k")
        with pytest.raises(DeviceTrap, match="no PBK"):
            device.launch(kernel, 1, 32, [])

    def test_fall_off_end_traps(self, device):
        # An unconditional backwards BRA as the final instruction is legal
        # assembly; a guarded never-taken branch path falls off the end.
        kernel = assemble(
            ".kernel k\nTOP:\n    ISETP.EQ P0, RZ, 1 ;\n@P0 BRA TOP ;\n    NOP ;\n    BRA END ;\nEND:\n    EXIT ;"
        ).get("k")
        device.launch(kernel, 1, 32, [])  # sanity: this one is fine

    def test_infinite_loop_hits_watchdog(self, device):
        device.instruction_budget = 10_000
        kernel = assemble(".kernel k\nLOOP:\n    BRA LOOP ;\n    EXIT ;").get("k")
        with pytest.raises(WatchdogTimeout):
            device.launch(kernel, 1, 32, [])
        assert any("watchdog" in line for line in device.dmesg)
