"""Block-compiled interpreter (:mod:`repro.gpusim.blockc`) parity tests.

The block-compiled tier is an execution *strategy*, not a semantics
change: every test here runs the same program per-step and
block-compiled and asserts the observable state — memory, counters,
stdout, output files, trap identity, dmesg — is identical.  Coverage
follows the fallback matrix in ``docs/performance.md``: straight-line
blocks, guarded instructions inside blocks, mid-block memory traps,
watchdog exhaustion at a block-interior instruction, clock readers,
and campaign-level results.csv parity across serial/snapshot/batch
executors (a fault injected at a block-interior dynamic instruction
rides the instrumented step path while every other launch runs
compiled blocks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch_injector import BatchExecutor
from repro.core.campaign import CampaignConfig
from repro.core.engine import CampaignEngine
from repro.core.snapshot import SnapshotExecutor
from repro.core.store import CampaignStore
from repro.errors import MemoryViolation, WatchdogTimeout
from repro.gpusim import blockc
from repro.gpusim.device import Device
from repro.runner.sandbox import SandboxConfig, run_app
from repro.sass import assemble
from repro.workloads import WORKLOAD_CLASSES, get_workload
from tests.conftest import read_u32

WORKLOAD_NAMES = [cls.name for cls in WORKLOAD_CLASSES]


def _device(block_compile: bool, **kwargs) -> Device:
    return Device(
        num_sms=2, global_mem_bytes=1 << 20, block_compile=block_compile,
        **kwargs,
    )


def _differential(text: str, name: str, grid, block, out_words: int,
                  params=None, **device_kwargs):
    """Run one kernel per-step and block-compiled; assert identical state.

    Returns ``(step_device, blockc_device, step_out, blockc_out)`` so
    callers can add mode-specific assertions (e.g. that blocks engaged).
    """
    results = {}
    for block_compile in (False, True):
        device = _device(block_compile, **device_kwargs)
        out = device.malloc(4 * out_words)
        kernel = assemble(text).get(name)
        device.launch(kernel, grid, block, [out] + list(params or []))
        results[block_compile] = (device, read_u32(device, out, out_words))
    step_dev, step_out = results[False]
    bc_dev, bc_out = results[True]
    assert (step_out == bc_out).all()
    assert step_dev.instructions_executed == bc_dev.instructions_executed
    assert step_dev.cycles == bc_dev.cycles
    assert step_dev.dmesg == bc_dev.dmesg
    assert step_dev.blockc_block_hits == 0
    assert bc_dev.blockc_block_hits > 0
    return step_dev, bc_dev, step_out, bc_out


class TestWorkloadDifferential:
    """Every workload, golden run, step vs block-compiled: artifacts equal."""

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_golden_run_parity(self, name):
        step = run_app(
            get_workload(name), config=SandboxConfig(block_compile=False)
        )
        compiled = run_app(
            get_workload(name), config=SandboxConfig(block_compile=True)
        )
        assert step.instructions_executed == compiled.instructions_executed
        assert step.cycles == compiled.cycles
        assert step.stdout == compiled.stdout
        assert step.files == compiled.files
        assert step.exit_status == compiled.exit_status
        assert step.dmesg == compiled.dmesg
        assert step.blockc_block_hits == 0
        assert compiled.blockc_blocks_compiled > 0
        assert compiled.blockc_block_hits > 0


class TestStraightLineParity:
    def test_guarded_instructions_inside_block(self):
        """Guards are the one mask that stays per-instruction inside a
        block (predicates mutate mid-block); both polarities, plus a
        predicate written *between* the guarded consumers."""
        text = """
.kernel guarded
.params 1
    S2R R1, SR_TID.X ;
    MOV R9, c[0x0][0x0] ;
    ISCADD R10, R1, R9, 2 ;
    LOP.AND R2, R1, 1 ;
    ISETP.NE P0, R2, RZ ;
    MOV R3, 100 ;
@P0 IADD R3, R3, 23 ;
@!P0 IADD R3, R3, 7 ;
    ISETP.GE P0, R1, 16 ;
@P0 IADD R3, R3, 1000 ;
    STG.32 [R10], R3 ;
    EXIT ;
"""
        _, _, step_out, _ = _differential(text, "guarded", 1, 32, 32)
        lanes = np.arange(32)
        expected = np.where(lanes % 2 == 1, 123, 107) + np.where(
            lanes >= 16, 1000, 0
        )
        assert (step_out == expected).all()

    def test_read_modify_write_in_block(self):
        """Register sources are read as views in specialized blocks; an
        instruction whose destination is also a source must still see the
        pre-write value (the handler's defensive-copy semantics)."""
        text = """
.kernel rmw
.params 1
    S2R R1, SR_TID.X ;
    MOV R9, c[0x0][0x0] ;
    ISCADD R10, R1, R9, 2 ;
    IADD R1, R1, R1 ;
    IADD R1, R1, 5 ;
    IMAD R1, R1, R1, R1 ;
    LOP.XOR R1, R1, R1 ;
    IADD R1, R1, 3 ;
    STG.32 [R10], R1 ;
    EXIT ;
"""
        _, _, step_out, _ = _differential(text, "rmw", 1, 32, 32)
        assert (step_out == 3).all()

    def test_clock_reader_splits_block(self):
        """``SR_CLOCK`` observes the tick counter mid-block; the reader
        must be stepped individually so the observed value matches the
        per-instruction schedule exactly."""
        text = """
.kernel clocked
.params 1
    S2R R1, SR_TID.X ;
    MOV R9, c[0x0][0x0] ;
    ISCADD R10, R1, R9, 2 ;
    IADD R2, R1, 7 ;
    IMAD R3, R2, R2, R1 ;
    CS2R R4, SR_CLOCK ;
    IADD R5, R4, R3 ;
    STG.32 [R10], R4 ;
    EXIT ;
"""
        _differential(text, "clocked", 2, 64, 128)


class TestMidBlockTraps:
    def test_memory_violation_at_block_interior(self):
        """A store that faults mid-block must roll back the bulk tick
        charge: trap identity, counters and dmesg all match stepping."""
        text = """
.kernel trapper
.params 1
    MOV R1, c[0x0][0x0] ;
    IADD R2, R1, 4 ;
    MOV R3, 7 ;
    MOV R4, 0x7f000000 ;
    STG.32 [R4], R3 ;
    IADD R5, R3, 1 ;
    STG.32 [R1], R5 ;
    EXIT ;
"""
        outcomes = {}
        for block_compile in (False, True):
            device = _device(block_compile)
            out = device.malloc(64)
            kernel = assemble(text).get("trapper")
            with pytest.raises(MemoryViolation) as exc_info:
                device.launch(kernel, 1, 32, [out])
            outcomes[block_compile] = (
                str(exc_info.value),
                device.instructions_executed,
                device.cycles,
                device.dmesg,
                bytes(read_u32(device, out, 16)),
            )
        assert outcomes[False] == outcomes[True]

    def test_watchdog_exhaustion_at_block_interior(self):
        """The scheduler only runs a block whole when the watchdog budget
        has headroom for all of it — exhaustion must trap at the exact
        same dynamic instruction as stepping."""
        text = """
.kernel spinner
    MOV R1, RZ ;
LOOP:
    IADD R2, R1, 3 ;
    IMAD R3, R2, R2, R1 ;
    LOP.XOR R4, R3, R2 ;
    IADD R1, R1, 1 ;
    BRA LOOP ;
"""
        outcomes = {}
        for block_compile in (False, True):
            device = _device(block_compile, instruction_budget=500)
            kernel = assemble(text).get("spinner")
            with pytest.raises(WatchdogTimeout) as exc_info:
                device.launch(kernel, 1, 32, [])
            outcomes[block_compile] = (
                exc_info.value.args,
                device.instructions_executed,
                device.cycles,
                device.dmesg,
            )
        assert outcomes[False] == outcomes[True]
        assert outcomes[True][1] == 501  # trapped at the crossing tick


class TestTickN:
    """``tick_n(n)`` must be exactly equivalent to ``n`` ``tick()`` calls."""

    def test_bulk_equals_stepped(self):
        bulk, stepped = Device(num_sms=1), Device(num_sms=1)
        bulk.tick_n(37)
        for _ in range(37):
            stepped.tick()
        assert bulk.instructions_executed == stepped.instructions_executed
        assert bulk.cycles == stepped.cycles

    def test_cycle_override(self):
        device = Device(num_sms=1)
        device.tick_n(10, cycles=250)
        assert device.instructions_executed == 10
        assert device.cycles == 250

    def test_budget_crossing_raises(self):
        device = Device(num_sms=1, instruction_budget=5)
        device.tick_n(5)
        with pytest.raises(WatchdogTimeout):
            device.tick_n(3)
        assert device.dmesg  # Xid logged, exactly as tick() does

    def test_untick_rolls_back(self):
        device = Device(num_sms=1)
        device.tick_n(10)
        device.untick(4)
        assert device.instructions_executed == 6
        assert device.cycles == 6


class TestCompilationCache:
    _SRC = """
.kernel cached
.params 1
    MOV R1, c[0x0][0x0] ;
    IADD R2, R1, 1 ;
    IMAD R3, R2, R2, R1 ;
    STG.32 [R1], R3 ;
    EXIT ;
"""

    def test_layout_shared_across_instances(self):
        """Two kernel objects assembled from the same source share one
        compiled layout (the process-global content-keyed cache) while
        binding their own instruction objects."""
        a = assemble(self._SRC).get("cached")
        b = assemble(self._SRC).get("cached")
        ca = blockc.compiled_for(a)
        cb = blockc.compiled_for(b)
        assert ca.fingerprint == cb.fingerprint
        assert blockc._CODE_CACHE[ca.fingerprint] is (
            blockc._CODE_CACHE[cb.fingerprint]
        )
        assert ca is not cb

    def test_cached_on_kernel_instance(self):
        kernel = assemble(self._SRC).get("cached")
        assert blockc.compiled_for(kernel) is blockc.compiled_for(kernel)

    def test_invalidate_forces_rebuild(self):
        kernel = assemble(self._SRC).get("cached")
        compiled = blockc.compiled_for(kernel)
        blockc.invalidate(kernel)
        rebuilt = blockc.compiled_for(kernel)
        assert rebuilt is not compiled
        assert rebuilt.fingerprint == compiled.fingerprint

    def test_want_blocks_upgrades_table_only_entry(self):
        kernel = assemble(self._SRC).get("cached")
        table_only = blockc.compiled_for(kernel, want_blocks=False)
        assert table_only.blocks is None
        upgraded = blockc.compiled_for(kernel, want_blocks=True)
        assert upgraded.blocks is not None
        assert upgraded.num_blocks > 0
        # The upgrade sticks; a later table-only request sees the blocks.
        assert blockc.compiled_for(kernel, want_blocks=False) is upgraded

    def test_same_length_rewrite_rebuilds(self):
        """The historical staleness bug: an in-place rewrite of equal
        length must rebuild the compiled tables, not serve stale dispatch."""
        kernel = assemble(self._SRC).get("cached")
        donor = assemble(self._SRC.replace("IADD R2, R1, 1", "MOV R2, R1")).get(
            "cached"
        )
        compiled = blockc.compiled_for(kernel)
        kernel.instructions[1] = donor.instructions[1]
        rebuilt = blockc.compiled_for(kernel)
        assert rebuilt is not compiled
        assert rebuilt.fingerprint != compiled.fingerprint

    def test_fingerprint_covers_branch_targets(self):
        """Identical instruction text, different label placement: the
        fingerprints must differ (a jump lands on a different pc)."""
        before = """
.kernel k
    MOV R1, RZ ;
    BRA SKIP ;
    IADD R1, R1, 1 ;
SKIP:
    IADD R1, R1, 2 ;
    EXIT ;
"""
        after = """
.kernel k
    MOV R1, RZ ;
    BRA SKIP ;
    IADD R1, R1, 1 ;
    IADD R1, R1, 2 ;
SKIP:
    EXIT ;
"""
        fp_a = blockc.content_fingerprint(assemble(before).get("k").instructions)
        fp_b = blockc.content_fingerprint(assemble(after).get("k").instructions)
        assert fp_a != fp_b


class TestCampaignParity:
    """A full injection campaign — faults land at block-interior dynamic
    instructions; the instrumented target launch steps while every other
    launch runs compiled blocks — must produce byte-identical results.csv
    with the tier on or off, across serial, snapshot and batch executors."""

    _WORKLOAD = "314.omriq"
    _FAULTS = 6
    _SEED = 13

    def _run(self, tmp_path, label, block_compile, executor=None):
        store_dir = tmp_path / label
        engine = CampaignEngine(
            self._WORKLOAD,
            CampaignConfig(
                workload=self._WORKLOAD,
                num_transient=self._FAULTS,
                seed=self._SEED,
                block_compile=block_compile,
            ),
            store=CampaignStore(store_dir),
            executor=executor,
        )
        engine.run_transient()
        return (store_dir / "results.csv").read_bytes()

    def test_results_csv_byte_identical_across_executors(self, tmp_path):
        baseline = self._run(tmp_path, "step-serial", block_compile=False)
        assert self._run(tmp_path, "bc-serial", True) == baseline
        assert self._run(
            tmp_path, "bc-snapshot", True, executor=SnapshotExecutor()
        ) == baseline
        assert self._run(
            tmp_path, "bc-batch", True, executor=BatchExecutor()
        ) == baseline
