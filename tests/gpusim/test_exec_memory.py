"""Semantics tests: loads, stores, atomics, local and constant memory."""

import numpy as np
import pytest

from repro.errors import MemoryViolation
from repro.sass import assemble
from tests.conftest import read_f32, read_u32, write_f32, write_u32
from tests.gpusim.helpers import fbits, run_lanes

LANES = np.arange(32, dtype=np.int64)


class TestGlobalLoadStore:
    def test_ldg(self, device):
        data = device.malloc(4 * 32)
        write_u32(device, data, np.arange(32) * 3)
        body = (
            "    MOV R1, c[0x0][0x4] ;\n"
            "    ISCADD R2, R50, R1, 2 ;\n"
            "    LDG.32 R0, [R2] ;"
        )
        out = run_lanes(device, body, params=[data])
        assert (out == LANES * 3).all()

    def test_ldg_with_offset(self, device):
        data = device.malloc(4 * 40)
        write_u32(device, data, np.arange(40))
        body = (
            "    MOV R1, c[0x0][0x4] ;\n"
            "    ISCADD R2, R50, R1, 2 ;\n"
            "    LDG.32 R0, [R2+0x10] ;"
        )
        out = run_lanes(device, body, params=[data])
        assert (out == LANES + 4).all()

    def test_stg_then_ldg_64(self, device):
        text = """
.kernel k
.params 1
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    ISCADD R3, R1, R2, 3 ;
    I2F R4, R1 ;
    F2F.F64.F32 R6, R4 ;
    STG.64 [R3], R6 ;
    LDG.64 R8, [R3] ;
    DADD R10, R8, R8 ;
    STG.64 [R3], R10 ;
    EXIT ;
"""
        out_buf = device.malloc(8 * 32)
        device.launch(assemble(text).get("k"), 1, 32, [out_buf])
        raw = np.frombuffer(device.global_mem.read_bytes(out_buf, 8 * 32), np.float64)
        assert np.allclose(raw, 2.0 * np.arange(32))

    def test_kernel_oob_raises(self, device):
        text = """
.kernel k
.params 0
    MOV32I R1, 0x3ffff0 ;
    LDG.32 R0, [R1] ;
    EXIT ;
"""
        with pytest.raises(MemoryViolation):
            device.launch(assemble(text).get("k"), 1, 1, [])
        assert any("Xid" in line for line in device.dmesg)


class TestSharedMemory:
    def test_sts_lds_roundtrip(self, device):
        text = """
.kernel k
.params 1
.shared 128
    S2R R1, SR_TID.X ;
    SHL R2, R1, 2 ;
    IMUL R3, R1, R1 ;
    STS.32 [R2], R3 ;
    BAR.SYNC ;
    LDS.32 R4, [R2] ;
    MOV R5, c[0x0][0x0] ;
    ISCADD R6, R1, R5, 2 ;
    STG.32 [R6], R4 ;
    EXIT ;
"""
        out = device.malloc(4 * 32)
        device.launch(assemble(text).get("k"), 1, 32, [out])
        assert (read_u32(device, out, 32) == np.arange(32) ** 2).all()

    def test_shared_oob_raises(self, device):
        text = """
.kernel k
.shared 16
    MOV R1, 0x40 ;
    LDS.32 R0, [R1] ;
    EXIT ;
"""
        with pytest.raises(MemoryViolation, match="shared"):
            device.launch(assemble(text).get("k"), 1, 1, [])


class TestLocalMemory:
    def test_stl_ldl_per_thread(self, device):
        text = """
.kernel k
.params 1
.local 16
    S2R R1, SR_TID.X ;
    STL.32 [RZ], R1 ;
    STL.32 [RZ+0x4], RZ ;
    LDL.32 R2, [RZ] ;
    MOV R3, c[0x0][0x0] ;
    ISCADD R4, R1, R3, 2 ;
    STG.32 [R4], R2 ;
    EXIT ;
"""
        out = device.malloc(4 * 32)
        device.launch(assemble(text).get("k"), 1, 32, [out])
        # Each thread reads back its own value — local memory is private.
        assert (read_u32(device, out, 32) == np.arange(32)).all()

    def test_local_oob_raises(self, device):
        text = """
.kernel k
.local 8
    MOV R1, 0x10 ;
    LDL.32 R0, [R1] ;
    EXIT ;
"""
        with pytest.raises(MemoryViolation, match="local"):
            device.launch(assemble(text).get("k"), 1, 1, [])


class TestConstants:
    def test_ldc(self, device):
        body = "    LDC.32 R0, c[0x0][0x4] ;"
        out = run_lanes(device, body, params=[1234])
        assert (out == 1234).all()

    def test_const_alu_operand(self, device):
        body = "    IADD R0, R50, c[0x0][0x4] ;"
        out = run_lanes(device, body, params=[1000])
        assert (out == LANES + 1000).all()


class TestAtomics:
    def test_red_add_u32(self, device):
        counter = device.malloc(4)
        write_u32(device, counter, np.zeros(1))
        body = (
            "    MOV R1, c[0x0][0x4] ;\n"
            "    MOV R2, 1 ;\n"
            "    RED.ADD [R1], R2 ;\n"
            "    MOV R0, RZ ;"
        )
        run_lanes(device, body, params=[counter])
        assert read_u32(device, counter, 1)[0] == 32

    def test_red_add_f32(self, device):
        acc = device.malloc(4)
        write_f32(device, acc, np.zeros(1))
        body = (
            "    MOV R1, c[0x0][0x4] ;\n"
            f"    MOV32I R2, {fbits(0.5)} ;\n"
            "    RED.ADD.F32 [R1], R2 ;\n"
            "    MOV R0, RZ ;"
        )
        run_lanes(device, body, params=[acc])
        assert read_f32(device, acc, 1)[0] == 16.0

    def test_atom_returns_old_value(self, device):
        counter = device.malloc(4)
        write_u32(device, counter, np.zeros(1))
        body = (
            "    MOV R1, c[0x0][0x4] ;\n"
            "    MOV R2, 1 ;\n"
            "    ATOMG.ADD R0, [R1], R2 ;"
        )
        out = run_lanes(device, body, params=[counter])
        # Lanes serialise in lane order: lane i sees old value i.
        assert (np.sort(out) == np.arange(32)).all()
        assert read_u32(device, counter, 1)[0] == 32

    def test_atom_max(self, device):
        cell = device.malloc(4)
        write_u32(device, cell, np.zeros(1))
        body = (
            "    MOV R1, c[0x0][0x4] ;\n"
            "    ATOMG.MAX R0, [R1], R50 ;"
        )
        run_lanes(device, body, params=[cell])
        assert read_u32(device, cell, 1)[0] == 31

    def test_atom_exch(self, device):
        cell = device.malloc(4)
        write_u32(device, cell, np.array([999]))
        body = (
            "    MOV R1, c[0x0][0x4] ;\n"
            "    ATOMG.EXCH R0, [R1], R50 ;"
        )
        out = run_lanes(device, body, params=[cell])
        assert out[0] == 999  # lane 0 sees the initial value
        assert read_u32(device, cell, 1)[0] == 31  # last lane's value sticks

    def test_atoms_shared(self, device):
        text = """
.kernel k
.params 1
.shared 16
    S2R R1, SR_TID.X ;
    MOV R2, 1 ;
    ATOMS.ADD R3, [RZ], R2 ;
    BAR.SYNC ;
    LDS.32 R4, [RZ] ;
    ISETP.EQ P0, R1, 0 ;
@!P0 EXIT ;
    MOV R5, c[0x0][0x0] ;
    STG.32 [R5], R4 ;
    EXIT ;
"""
        out = device.malloc(4)
        device.launch(assemble(text).get("k"), 1, 32, [out])
        assert read_u32(device, out, 1)[0] == 32
