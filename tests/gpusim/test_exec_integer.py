"""Semantics tests: integer, logic and shift opcodes."""

import numpy as np
import pytest

from repro.errors import DeviceTrap
from repro.sass import assemble
from tests.gpusim.helpers import run_lanes

LANES = np.arange(32, dtype=np.int64)


class TestArithmetic:
    def test_iadd(self, device):
        out = run_lanes(device, "    IADD R0, R50, 100 ;")
        assert (out == LANES + 100).all()

    def test_iadd_wraps(self, device):
        out = run_lanes(device, "    MOV32I R1, 0xffffffff ;\n    IADD R0, R1, 2 ;")
        assert (out == 1).all()

    def test_iadd_negated_source(self, device):
        out = run_lanes(device, "    MOV R1, 10 ;\n    IADD R0, R1, -R50 ;")
        assert (out.astype(np.int32) == 10 - LANES).all()

    def test_iadd3(self, device):
        out = run_lanes(device, "    IADD3 R0, R50, R50, 5 ;")
        assert (out == 2 * LANES + 5).all()

    def test_imul(self, device):
        out = run_lanes(device, "    IMUL R0, R50, 7 ;")
        assert (out == LANES * 7).all()

    def test_imul_hi(self, device):
        body = "    MOV32I R1, 0x10000 ;\n    IMUL.HI R0, R1, R1 ;"
        assert (run_lanes(device, body) == 1).all()

    def test_imad(self, device):
        out = run_lanes(device, "    IMAD R0, R50, 3, 11 ;")
        assert (out == LANES * 3 + 11).all()

    def test_iabs(self, device):
        body = "    MOV R1, RZ ;\n    IADD R1, R1, -R50 ;\n    IABS R0, R1 ;"
        assert (run_lanes(device, body) == LANES).all()

    def test_iscadd(self, device):
        out = run_lanes(device, "    ISCADD R0, R50, 1000, 2 ;")
        assert (out == 4 * LANES + 1000).all()

    def test_imnmx_min_signed(self, device):
        body = "    MOV32I R1, -5 ;\n    IMNMX.MIN R0, R50, R1 ;"
        out = run_lanes(device, body).astype(np.int32)
        assert (out == -5).all()

    def test_imnmx_max_unsigned(self, device):
        body = "    MOV32I R1, 0xffffffff ;\n    IMNMX.MAX.U32 R0, R50, R1 ;"
        assert (run_lanes(device, body) == 0xFFFFFFFF).all()


class TestComparisons:
    def test_isetp_lt_writes_pred(self, device):
        body = (
            "    ISETP.LT P0, R50, 16 ;\n"
            "    MOV R0, RZ ;\n"
            "@P0 MOV R0, 1 ;"
        )
        out = run_lanes(device, body)
        assert (out == (LANES < 16)).all()

    def test_isetp_signed_vs_unsigned(self, device):
        # -1 < 1 signed, but 0xffffffff > 1 unsigned
        body_signed = (
            "    MOV32I R1, 0xffffffff ;\n"
            "    ISETP.LT P0, R1, 1 ;\n"
            "    MOV R0, RZ ;\n@P0 MOV R0, 1 ;"
        )
        body_unsigned = (
            "    MOV32I R1, 0xffffffff ;\n"
            "    ISETP.LT.U32 P0, R1, 1 ;\n"
            "    MOV R0, RZ ;\n@P0 MOV R0, 1 ;"
        )
        assert (run_lanes(device, body_signed) == 1).all()
        assert (run_lanes(device, body_unsigned) == 0).all()

    def test_isetp_and_combination(self, device):
        body = (
            "    ISETP.LT P1, R50, 16 ;\n"
            "    ISETP.GT.AND P0, R50, 7, P1 ;\n"
            "    MOV R0, RZ ;\n@P0 MOV R0, 1 ;"
        )
        out = run_lanes(device, body)
        assert (out == ((LANES > 7) & (LANES < 16))).all()

    def test_sel(self, device):
        body = (
            "    ISETP.GE P0, R50, 16 ;\n"
            "    SEL R0, 111, 222, P0 ;"
        )
        out = run_lanes(device, body)
        assert (out == np.where(LANES >= 16, 111, 222)).all()


class TestLogicAndShifts:
    def test_lop_and_or_xor(self, device):
        assert (run_lanes(device, "    LOP.AND R0, R50, 1 ;") == (LANES & 1)).all()
        assert (run_lanes(device, "    LOP.OR R0, R50, 0x100 ;") == (LANES | 0x100)).all()
        assert (run_lanes(device, "    LOP.XOR R0, R50, 0xf ;") == (LANES ^ 0xF)).all()

    def test_lop_not(self, device):
        out = run_lanes(device, "    LOP.NOT R0, R50 ;")
        assert (out == (~LANES & 0xFFFFFFFF)).all()

    def test_lop3_lut(self, device):
        # LUT 0xE8 = majority(a, b, c)
        body = (
            "    MOV R1, 0xc ;\n    MOV R2, 0xa ;\n    MOV R3, 0x9 ;\n"
            "    LOP3.LUT R0, R1, R2, R3, 0xe8 ;"
        )
        out = run_lanes(device, body)
        assert (out == ((0xC & 0xA) | (0xA & 0x9) | (0xC & 0x9))).all()

    def test_shl(self, device):
        assert (run_lanes(device, "    SHL R0, 1, R50 ;") == (1 << LANES)).all()

    def test_shl_over_31_is_zero(self, device):
        assert (run_lanes(device, "    SHL R0, 1, 40 ;") == 0).all()

    def test_shr_unsigned(self, device):
        body = "    MOV32I R1, 0x80000000 ;\n    SHR.U32 R0, R1, 4 ;"
        assert (run_lanes(device, body) == 0x08000000).all()

    def test_shr_arithmetic(self, device):
        body = "    MOV32I R1, 0x80000000 ;\n    SHR.S32 R0, R1, 4 ;"
        assert (run_lanes(device, body) == 0xF8000000).all()

    def test_shf_funnel_right(self, device):
        body = (
            "    MOV32I R1, 0x00000001 ;\n    MOV32I R2, 0x80000000 ;\n"
            "    SHF.R R0, R2, 31, R1 ;"
        )
        # (0x00000001_80000000 >> 31) & mask32 = 3
        assert (run_lanes(device, body) == 3).all()

    def test_popc(self, device):
        assert (run_lanes(device, "    POPC R0, R50 ;") ==
                np.array([bin(i).count("1") for i in range(32)])).all()

    def test_flo(self, device):
        out = run_lanes(device, "    FLO R0, R50 ;")
        expected = np.array(
            [0xFFFFFFFF if i == 0 else i.bit_length() - 1 for i in range(32)],
            dtype=np.uint32,
        )
        assert (out == expected).all()

    def test_bfe(self, device):
        # Extract 8 bits from position 4 of 0xABCD: control = 4 | (8 << 8)
        body = "    MOV32I R1, 0xabcd ;\n    BFE R0, R1, 0x804 ;"
        assert (run_lanes(device, body) == ((0xABCD >> 4) & 0xFF)).all()

    def test_bfi(self, device):
        # Insert 0xF at position 8, width 4 into zero.
        body = "    MOV R1, 0xf ;\n    BFI R0, R1, 0x408, RZ ;"
        assert (run_lanes(device, body) == 0xF00).all()

    def test_i2i_s8_sign_extends(self, device):
        body = "    MOV R1, 0x80 ;\n    I2I.S32.S8 R0, R1 ;"
        assert (run_lanes(device, body) == 0xFFFFFF80).all()

    def test_i2i_u16_zero_extends(self, device):
        body = "    MOV32I R1, 0x1ffff ;\n    I2I.S32.U16 R0, R1 ;"
        assert (run_lanes(device, body) == 0xFFFF).all()


class TestUnimplementedOpcode:
    def test_executing_non_executable_opcode_traps(self, device):
        kernel = assemble(".kernel k\n    HADD2 R0, R1, R2 ;\n    EXIT ;").get("k")
        with pytest.raises(DeviceTrap, match="no execution semantics"):
            device.launch(kernel, 1, 32, [])
