"""Semantics tests: FP64 opcodes (register-pair semantics)."""

import numpy as np

from tests.gpusim.helpers import fbits, lanes_f64, run_lanes

LANES = np.arange(32, dtype=np.float64)


def _widen(reg_src: str, reg_dst: str) -> str:
    return f"    F2F.F64.F32 {reg_dst}, {reg_src} ;"


class TestFp64Arithmetic:
    def test_f2d_then_dadd(self, device):
        body = (
            "    I2F R1, R50 ;\n"
            + _widen("R1", "R2")
            + f"\n    MOV32I R5, {fbits(0.25)} ;\n"
            + _widen("R5", "R6")
            + "\n    DADD R0, R2, R6 ;"
        )
        out = lanes_f64(run_lanes(device, body, pair=True))
        assert np.allclose(out, LANES + 0.25)

    def test_dmul(self, device):
        body = (
            "    I2F R1, R50 ;\n"
            + _widen("R1", "R2")
            + "\n    DMUL R0, R2, R2 ;"
        )
        out = lanes_f64(run_lanes(device, body, pair=True))
        assert np.allclose(out, LANES * LANES)

    def test_dfma(self, device):
        body = (
            "    I2F R1, R50 ;\n"
            + _widen("R1", "R2")
            + f"\n    MOV32I R5, {fbits(2.0)} ;\n"
            + _widen("R5", "R6")
            + f"\n    MOV32I R12, {fbits(1.0)} ;\n"
            + _widen("R12", "R14")
            + "\n    DFMA R0, R2, R6, R14 ;"
        )
        out = lanes_f64(run_lanes(device, body, pair=True))
        assert np.allclose(out, LANES * 2.0 + 1.0)

    def test_dmnmx(self, device):
        body = (
            "    I2F R1, R50 ;\n"
            + _widen("R1", "R2")
            + f"\n    MOV32I R5, {fbits(10.0)} ;\n"
            + _widen("R5", "R6")
            + "\n    DMNMX.MIN R0, R2, R6 ;"
        )
        out = lanes_f64(run_lanes(device, body, pair=True))
        assert np.allclose(out, np.minimum(LANES, 10.0))

    def test_dadd_negated(self, device):
        body = (
            "    I2F R1, R50 ;\n"
            + _widen("R1", "R2")
            + "\n    DADD R0, R2, -R2 ;"
        )
        out = lanes_f64(run_lanes(device, body, pair=True))
        assert np.allclose(out, 0.0)

    def test_dsetp(self, device):
        body = (
            "    I2F R1, R50 ;\n"
            + _widen("R1", "R2")
            + f"\n    MOV32I R5, {fbits(15.0)} ;\n"
            + _widen("R5", "R6")
            + "\n    DSETP.GE P0, R2, R6 ;\n"
            + "    MOV R0, RZ ;\n@P0 MOV R0, 1 ;"
        )
        out = run_lanes(device, body)
        assert (out == (LANES >= 15.0)).all()

    def test_d2f_narrowing(self, device):
        body = (
            "    I2F R1, R50 ;\n"
            + _widen("R1", "R2")
            + "\n    DMUL R2, R2, R2 ;\n"
            + "    F2F.F32.F64 R0, R2 ;"
        )
        out = run_lanes(device, body)
        assert np.allclose(out.view(np.float32), (LANES * LANES).astype(np.float32))

    def test_fp64_precision_beyond_fp32(self, device):
        # 1 + 2^-40 is representable in FP64 but rounds away in FP32.
        tiny_hi = 0x3E700000  # FP64 bits of 2^-24... use exact: build via DADD
        body = (
            f"    MOV32I R1, {fbits(1.0)} ;\n"
            + _widen("R1", "R2")
            + f"\n    MOV32I R5, {fbits(2.0 ** -30)} ;\n"
            + _widen("R5", "R6")
            + "\n    DADD R0, R2, R6 ;"
        )
        out = lanes_f64(run_lanes(device, body, pair=True))
        assert (out == 1.0 + 2.0**-30).all()
        assert (out != 1.0).all()
