"""Golden-replay unit tests: recording, on-disk round-trip, cursor guards.

Campaign-level parity (serial/parallel/resumed ``results.csv`` bytes) lives
in ``tests/core/test_fast_forward.py``; this file exercises the subsystem
directly: delta capture under realloc/free, the binary format, and the
cursor's fail-safe disarm rules.
"""

import numpy as np
import pytest

from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup
from repro.core.injector import TransientInjectorTool
from repro.core.params import TransientParams
from repro.errors import ReproError
from repro.gpusim.device import Device
from repro.gpusim.replay import (
    ReplayCursor,
    ReplayRecorder,
    ReplayRef,
    load_replay_log,
    save_replay_log,
)
from repro.mem.memory import PAGE_SIZE
from repro.runner.app import AppContext, Application
from repro.runner.sandbox import run_app

_MODULE = """
.kernel fill
.params 2
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    MOV R3, c[0x0][0x4] ;
    SHL R4, R1, 2 ;
    IADD R4, R4, R2 ;
    IADD R5, R1, R3 ;
    STG [R4], R5 ;
    EXIT ;

.kernel bump
.params 1
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    SHL R4, R1, 2 ;
    IADD R4, R4, R2 ;
    LDG R5, [R4] ;
    IADD R5, R5, 1 ;
    STG [R4], R5 ;
    EXIT ;
"""


class ReallocApp(Application):
    """Launches across an alloc → free → realloc sequence.

    The second allocation reuses (part of) the freed address range, so a
    replay that mishandled allocator churn would restore stale bytes.
    """

    name = "replay_realloc_app"

    def run(self, ctx: AppContext) -> None:
        cuda = ctx.cuda
        module = cuda.load_module(_MODULE)
        fill = cuda.get_function(module, "fill")
        bump = cuda.get_function(module, "bump")

        first = cuda.alloc(64, dtype=np.int32)
        cuda.launch(fill, 2, 32, first.address, 100)
        cuda.launch(bump, 2, 32, first.address)
        first.free()

        second = cuda.alloc(96, dtype=np.int32)
        cuda.launch(fill, 3, 32, second.address, 500)
        cuda.launch(bump, 3, 32, second.address)
        result = second.to_host()
        ctx.print("sum", int(result.sum()))
        second.free()


def _record(app, config=None) -> tuple:
    recorder = ReplayRecorder()
    artifacts = run_app(app, config=config, recorder=recorder)
    log = recorder.log()
    assert log is not None
    return artifacts, log


class TestRecording:
    def test_one_delta_per_launch(self):
        _, log = _record(ReallocApp())
        assert [(rec.kernel_name, rec.instance) for rec in log.launches] == [
            ("fill", 0), ("bump", 0), ("fill", 1), ("bump", 1),
        ]
        assert all(rec.pages.size > 0 for rec in log.launches)

    def test_counter_deltas_sum_to_run_totals(self):
        artifacts, log = _record(ReallocApp())
        assert (
            sum(rec.instructions for rec in log.launches)
            == artifacts.instructions_executed
        )
        assert sum(rec.warps for rec in log.launches) == artifacts.warps_launched

    def test_faulted_launch_aborts_recording(self):
        class Crashing(Application):
            name = "replay_crash_app"

            def run(self, ctx: AppContext) -> None:
                module = ctx.cuda.load_module(_MODULE)
                bump = ctx.cuda.get_function(module, "bump")
                ctx.cuda.launch(bump, 1, 32, 0)  # unmapped address

        recorder = ReplayRecorder()
        artifacts = run_app(Crashing(), recorder=recorder)
        # The driver absorbs the device fault into a sticky CUDA error; the
        # recording must still be discarded (partial writes happened).
        assert artifacts.cuda_errors
        assert recorder.log() is None

    def test_stop_launch_lookup(self):
        _, log = _record(ReallocApp())
        assert log.stop_launch_for("fill", 0) == 0
        assert log.stop_launch_for("bump", 1) == 3
        assert log.stop_launch_for("fill", 7) is None
        assert log.stop_launch_for("nope", 0) is None


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        loaded = load_replay_log(path)
        assert loaded.mem_size == log.mem_size
        assert len(loaded.launches) == len(log.launches)
        for original, thawed in zip(log.launches, loaded.launches):
            assert thawed.kernel_name == original.kernel_name
            assert thawed.instance == original.instance
            assert thawed.grid == original.grid
            assert thawed.block == original.block
            assert thawed.args == original.args
            assert thawed.instructions == original.instructions
            assert thawed.cycles == original.cycles
            assert np.array_equal(thawed.pages, original.pages)
            assert np.array_equal(thawed.data, original.data)

    def test_load_is_cached_per_process(self, tmp_path):
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        assert load_replay_log(path) is load_replay_log(path)

    def test_overwritten_log_reloaded(self, tmp_path):
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        first = load_replay_log(path)
        import os

        save_replay_log(log, path)
        os.utime(path, ns=(1, 1))  # force a different mtime
        assert load_replay_log(path) is not first

    def test_rewrite_preserving_mtime_and_size_reloaded(self, tmp_path):
        """Regression: the per-process cache used to key on (path, mtime,
        size) alone, serving a stale log when replay.bin was rewritten
        with both preserved (same-length tape + ``os.utime`` restore).
        The header-embedded content digest in the key catches that."""
        import os

        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        first = load_replay_log(path)
        stat = os.stat(path)

        mutated = log.launches[0].data.copy()
        mutated[0] ^= 1
        log.launches[0].data = mutated
        save_replay_log(log, path)  # same length: sizes match
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        reloaded = load_replay_log(path)
        assert os.stat(path).st_mtime_ns == stat.st_mtime_ns
        assert os.stat(path).st_size == stat.st_size
        assert reloaded is not first
        assert reloaded.launches[0].data[0] == mutated[0]

    def test_tampered_blob_fails_content_validation(self, tmp_path):
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip a tape byte past the header
        path.write_bytes(bytes(blob))
        with pytest.raises(ReproError, match="content validation"):
            load_replay_log(path)

    def test_pre_digest_log_still_loads(self, tmp_path):
        """Logs written before the sha256 header field must stay loadable
        (they simply skip content validation)."""
        import json
        import struct

        from repro.gpusim.replay import _MAGIC

        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        raw = path.read_bytes()
        offset = len(_MAGIC)
        (header_len,) = struct.unpack_from("<I", raw, offset)
        header = json.loads(raw[offset + 4 : offset + 4 + header_len])
        del header["sha256"]
        stripped = json.dumps(header, separators=(",", ":")).encode()
        legacy = tmp_path / "legacy.bin"
        legacy.write_bytes(
            _MAGIC + struct.pack("<I", len(stripped)) + stripped
            + raw[offset + 4 + header_len:]
        )
        loaded = load_replay_log(legacy)
        assert loaded.content_hash is None
        assert len(loaded.launches) == len(log.launches)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "not_a_log.bin"
        path.write_bytes(b"garbage that is not a replay log")
        with pytest.raises(ReproError, match="bad magic"):
            load_replay_log(path)

    def test_unreadable_ref_degrades_to_none(self, tmp_path):
        ref = ReplayRef(path=str(tmp_path / "missing.bin"), stop_launch=2)
        assert ref.cursor() is None


class TestCursorReplay:
    def _replay_run(self, stop_launch: int, tmp_path):
        """One recorded golden + one fast-forwarded re-run of ReallocApp."""
        golden, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        cursor = ReplayRef(path=str(path), stop_launch=stop_launch).cursor()
        replayed = run_app(ReallocApp(), replay=cursor)
        return golden, replayed, cursor

    @pytest.mark.parametrize("stop_launch", [1, 2, 3, 4])
    def test_replayed_run_is_bit_identical(self, stop_launch, tmp_path):
        golden, replayed, cursor = self._replay_run(stop_launch, tmp_path)
        assert replayed.stdout == golden.stdout
        assert replayed.instructions_executed == golden.instructions_executed
        assert replayed.cycles == golden.cycles
        assert replayed.warps_launched == golden.warps_launched
        assert replayed.exit_status == 0 and not replayed.crashed
        assert cursor.skipped == stop_launch
        assert replayed.replay_launches_skipped == stop_launch

    def test_disarms_at_stop_launch(self, tmp_path):
        _, _, cursor = self._replay_run(2, tmp_path)
        assert not cursor.armed  # reached the target, simulated from there

    def test_instrumented_launch_never_replayed(self, tmp_path):
        """The divergence guard: any instrumented launch (the injection
        target and anything after it) must simulate, even inside the
        replay window."""
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        cursor = ReplayRef(path=str(path), stop_launch=4).cursor()
        device = Device(global_mem_bytes=64 * 1024 * 1024)
        rec = cursor.consult(
            device,
            log.launches[0].kernel_name,
            log.launches[0].grid,
            log.launches[0].block,
            log.launches[0].args,
            log.launches[0].shared_bytes,
            instrumented=True,
        )
        assert rec is None and not cursor.armed

    def test_metadata_mismatch_disarms(self, tmp_path):
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        cursor = ReplayRef(path=str(path), stop_launch=4).cursor()
        device = Device(global_mem_bytes=64 * 1024 * 1024)
        rec = cursor.consult(
            device,
            "some_other_kernel",
            log.launches[0].grid,
            log.launches[0].block,
            log.launches[0].args,
            log.launches[0].shared_bytes,
            instrumented=False,
        )
        assert rec is None and not cursor.armed

    def test_mem_size_mismatch_disarms(self, tmp_path):
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        cursor = ReplayRef(path=str(path), stop_launch=4).cursor()
        small = Device(global_mem_bytes=1 << 20)
        first = log.launches[0]
        rec = cursor.consult(
            small, first.kernel_name, first.grid, first.block, first.args,
            first.shared_bytes, instrumented=False,
        )
        assert rec is None and not cursor.armed

    def test_stop_launch_clamped_to_log(self, tmp_path):
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        cursor = ReplayRef(path=str(path), stop_launch=99).cursor()
        assert cursor.stop_launch == len(log.launches)


class TestDirtyPageTracking:
    def test_atomics_tracked(self):
        """Atomics mutate memory bypassing store32; the recorder must still
        see their pages (this bit 354.cg's reduction kernels)."""
        module = """
.kernel atomic_inc
.params 1
    MOV R2, c[0x0][0x0] ;
    MOV R3, 1 ;
    ATOM R4, [R2], R3 ;
    EXIT ;
"""

        class AtomicApp(Application):
            name = "replay_atomic_app"

            def run(self, ctx: AppContext) -> None:
                mod = ctx.cuda.load_module(module)
                func = ctx.cuda.get_function(mod, "atomic_inc")
                buf = ctx.cuda.alloc(4, dtype=np.int32)
                buf.from_host(np.zeros(4, dtype=np.int32))
                ctx.cuda.launch(func, 1, 32, buf.address)
                ctx.print("count", int(buf.to_host()[0]))

        _, log = _record(AtomicApp())
        assert log.launches[0].pages.size > 0

    def test_host_writes_outside_window_untracked(self):
        device = Device(global_mem_bytes=1 << 20)
        mem = device.global_mem
        address = mem.alloc(PAGE_SIZE)
        mem.write_bytes(address, b"x" * 16)  # no window open: untracked
        mem.begin_write_tracking()
        pages = mem.end_write_tracking()
        assert pages.size == 0


# -- tail fast-forward ----------------------------------------------------------


class TailApp(Application):
    """fill, bump (the injection target), fill-overwrite, bump, bump.

    The second ``fill`` rewrites the whole buffer, so any fault confined to
    it is architecturally dead by launch 3 — the canonical re-convergence
    shape the tail cursor must detect.
    """

    name = "replay_tail_app"

    def run(self, ctx: AppContext) -> None:
        cuda = ctx.cuda
        module = cuda.load_module(_MODULE)
        fill = cuda.get_function(module, "fill")
        bump = cuda.get_function(module, "bump")
        buf = cuda.alloc(64, dtype=np.int32)
        cuda.launch(fill, 2, 32, buf.address, 100)
        cuda.launch(bump, 2, 32, buf.address)
        self.mid(ctx, buf)
        cuda.launch(fill, 2, 32, buf.address, 500)
        cuda.launch(bump, 2, 32, buf.address)
        cuda.launch(bump, 2, 32, buf.address)
        ctx.print("sum", int(buf.to_host().sum()))
        buf.free()

    def mid(self, ctx: AppContext, buf) -> None:
        """Hook between the target launch and the overwrite (default: none)."""


class TailReadMidApp(TailApp):
    """Reads the (divergent) buffer between the target and the overwrite."""

    name = "replay_tail_readmid_app"

    def mid(self, ctx: AppContext, buf) -> None:
        ctx.print("mid", int(buf.to_host().sum()))


class TailDivergentApp(Application):
    """fill then three bumps: no overwrite, so an SDC never re-converges."""

    name = "replay_tail_divergent_app"

    def run(self, ctx: AppContext) -> None:
        cuda = ctx.cuda
        module = cuda.load_module(_MODULE)
        fill = cuda.get_function(module, "fill")
        bump = cuda.get_function(module, "bump")
        buf = cuda.alloc(64, dtype=np.int32)
        cuda.launch(fill, 2, 32, buf.address, 100)
        cuda.launch(bump, 2, 32, buf.address)
        cuda.launch(bump, 2, 32, buf.address)
        cuda.launch(bump, 2, 32, buf.address)
        ctx.print("sum", int(buf.to_host().sum()))
        buf.free()


class TailHtoDApp(Application):
    """fill, bump (target), host upload overwriting the buffer, bump, bump.

    Convergence here happens through ``cuMemcpyHtoD``: the upload is
    identical in the golden and injected runs, so the cursor must mirror it
    into the shadow — otherwise live memory and the shadow disagree forever
    and the tail never re-arms.
    """

    name = "replay_tail_htod_app"

    def run(self, ctx: AppContext) -> None:
        cuda = ctx.cuda
        module = cuda.load_module(_MODULE)
        fill = cuda.get_function(module, "fill")
        bump = cuda.get_function(module, "bump")
        buf = cuda.alloc(64, dtype=np.int32)
        cuda.launch(fill, 2, 32, buf.address, 100)
        cuda.launch(bump, 2, 32, buf.address)
        buf.from_host(np.arange(700, 764, dtype=np.int32))
        cuda.launch(bump, 2, 32, buf.address)
        cuda.launch(bump, 2, 32, buf.address)
        ctx.print("sum", int(buf.to_host().sum()))
        buf.free()


def _injector(**overrides) -> TransientInjectorTool:
    """A deterministic single-bit-flip injector into ``bump`` instance 0.

    ``bit_pattern_value=0.05`` flips a low thread-id bit in the S2R result:
    the thread reads/writes a neighbouring element — silent data corruption
    with no CUDA error, exactly the divergence shape the tail tracks.
    ``bit_pattern_value=0.2`` flips an address-forming bit instead and the
    launch dies with ``ERROR_ILLEGAL_ADDRESS``.
    """
    params = dict(
        group=InstructionGroup.G_GP,
        model=BitFlipModel.FLIP_SINGLE_BIT,
        kernel_name="bump",
        kernel_count=0,
        instruction_count=0,
        dest_reg_selector=0.0,
        bit_pattern_value=0.05,
    )
    params.update(overrides)
    return TransientInjectorTool(TransientParams(**params))


def _assert_run_parity(tailed, full) -> None:
    """The tail-replayed injection run is bit-identical to the full one."""
    assert tailed.stdout == full.stdout
    assert tailed.files == full.files
    assert tailed.exit_status == full.exit_status
    assert tailed.crashed == full.crashed
    assert tailed.cuda_errors == full.cuda_errors
    assert tailed.dmesg == full.dmesg
    assert tailed.instructions_executed == full.instructions_executed
    assert tailed.cycles == full.cycles
    assert tailed.warps_launched == full.warps_launched
    assert tailed.active_sms == full.active_sms


class TestTailFastForward:
    def _tail_run(self, app_cls, tmp_path, stop_launch=1, tail=True, **inj):
        """Golden-record ``app_cls``, then run the same injection twice:
        fully simulated, and with a tail cursor.  Returns both artifact
        sets plus the cursor for state assertions."""
        _, log = _record(app_cls())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        full = run_app(app_cls(), preload=[_injector(**inj)])
        cursor = ReplayRef(
            path=str(path), stop_launch=stop_launch,
            pre=stop_launch > 0, tail=tail,
        ).cursor()
        tailed = run_app(app_cls(), preload=[_injector(**inj)], replay=cursor)
        return full, tailed, cursor, log

    def test_converged_fault_rearms_and_replays_tail(self, tmp_path):
        """The overwrite at launch 2 kills the fault: the cursor re-arms at
        the launch-3 boundary and replays the remaining two launches."""
        full, tailed, cursor, log = self._tail_run(TailApp, tmp_path)
        _assert_run_parity(tailed, full)
        assert not full.cuda_errors  # the fault really was silent
        assert cursor.skipped == 1  # pre-target: launch 0
        assert cursor.converged_at == 3
        assert cursor.tail_skipped == 2  # launches 3 and 4 off the tape
        assert tailed.replay_launches_skipped == 1
        assert tailed.replay_tail_skipped == 2
        assert tailed.replay_converged_at == 3

    def test_persistent_divergence_never_rearms(self, tmp_path):
        """No overwrite: the corrupted page differs from golden at every
        boundary, so everything after the target simulates."""
        full, tailed, cursor, log = self._tail_run(TailDivergentApp, tmp_path)
        _assert_run_parity(tailed, full)
        assert cursor.skipped == 1
        assert cursor.converged_at is None
        assert cursor.tail_skipped == 0
        # The final to_host of the corrupted buffer disarmed the tail (the
        # divergence became host-visible) — the conservative rule fired.
        assert not cursor.tracking
        assert tailed.replay_converged_at == -1
        # The SDC is host-visible in both runs, identically.
        golden, _ = _record(TailDivergentApp())
        assert tailed.stdout != golden.stdout

    def test_host_read_of_divergent_page_disarms(self, tmp_path):
        """A DtoH overlapping the divergence set makes the fault
        host-visible: the tail must turn off even though the buffer is
        later overwritten."""
        full, tailed, cursor, _ = self._tail_run(TailReadMidApp, tmp_path)
        _assert_run_parity(tailed, full)
        assert cursor.tail_skipped == 0
        assert cursor.converged_at is None
        # The mid read really observed the corruption.
        golden, _ = _record(TailReadMidApp())
        assert tailed.stdout != golden.stdout

    def test_host_write_mirrored_into_shadow(self, tmp_path):
        """Convergence via HtoD: the upload must land in the shadow too,
        or live-vs-shadow comparison would report divergence forever."""
        full, tailed, cursor, _ = self._tail_run(TailHtoDApp, tmp_path)
        _assert_run_parity(tailed, full)
        assert cursor.converged_at == 3
        assert cursor.tail_skipped == 1  # only the final bump replays

    def test_faulted_target_launch_disarms(self, tmp_path):
        """``bit_pattern_value=0.2`` corrupts an address: the target launch
        dies with a CUDA error, which both aborts tracking (partial writes)
        and poisons the tail via the driver's error hook."""
        full, tailed, cursor, _ = self._tail_run(
            TailApp, tmp_path, bit_pattern_value=0.2
        )
        _assert_run_parity(tailed, full)
        assert tailed.cuda_errors  # the fault really raised
        assert cursor.tail_skipped == 0
        assert cursor.converged_at is None

    def test_instrumented_post_target_launch_disarms_replaying(self, tmp_path):
        """A cursor whose window ends before the instrumented launch: the
        clean launch 1 converges trivially (re-arm at 2), then the
        instrumented launch 3 must drop the tape and simulate."""
        full, tailed, cursor, _ = self._tail_run(
            TailApp, tmp_path, kernel_count=1
        )
        _assert_run_parity(tailed, full)
        assert cursor.skipped == 1
        assert cursor.converged_at == 2
        assert cursor.tail_skipped == 1  # launch 2 replayed off the tape
        assert not cursor.tracking and not cursor.armed

    def test_low_patience_keeps_results_identical(self, tmp_path):
        """Patience only forfeits speedup, never changes results: even a
        zero-patience cursor keeps byte parity on a persistent SDC."""
        _, log = _record(TailDivergentApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        full = run_app(TailDivergentApp(), preload=[_injector()])
        cursor = ReplayCursor(
            load_replay_log(path), stop_launch=1, pre=True, tail=True,
            patience=0,
        )
        tailed = run_app(
            TailDivergentApp(), preload=[_injector()], replay=cursor
        )
        _assert_run_parity(tailed, full)
        assert not cursor.tracking
        assert cursor.converged_at is None
        assert cursor.tail_skipped == 0

    def test_tail_disabled_cursor_stops_at_target(self, tmp_path):
        """``tail=False`` (the PR-4 cursor): nothing after the target is
        ever replayed, whatever the divergence set would have said."""
        full, tailed, cursor, _ = self._tail_run(TailApp, tmp_path, tail=False)
        _assert_run_parity(tailed, full)
        assert cursor.skipped == 1
        assert cursor.tail_skipped == 0
        assert cursor.converged_at is None


class TestTailGuardsWhiteBox:
    def _tracking_cursor(self, tmp_path) -> ReplayCursor:
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        cursor = ReplayRef(path=str(path), stop_launch=1, tail=True).cursor()
        cursor._state = cursor._TRACKING
        cursor._shadow = np.zeros(log.mem_size, dtype=np.uint8)
        return cursor

    def test_host_read_of_clean_page_keeps_tracking(self, tmp_path):
        cursor = self._tracking_cursor(tmp_path)
        cursor.divergent = {5}
        cursor.note_host_read(7 * PAGE_SIZE, 16)  # different page: harmless
        assert cursor.tracking
        cursor.note_host_read(5 * PAGE_SIZE + 10, 4)  # overlaps page 5
        assert not cursor.tracking
        assert cursor.converged_at is None

    def test_host_read_straddling_into_divergent_page_disarms(self, tmp_path):
        cursor = self._tracking_cursor(tmp_path)
        cursor.divergent = {5}
        cursor.note_host_read(4 * PAGE_SIZE + PAGE_SIZE - 1, 2)  # pages 4..5
        assert not cursor.tracking

    def test_patience_counts_non_converged_boundaries(self, tmp_path):
        """With the divergence set non-empty, each boundary burns one unit
        of patience; exhaustion disarms, convergence would re-arm first."""
        cursor = self._tracking_cursor(tmp_path)
        cursor._patience = 1
        cursor.divergent = {5}
        device = Device(global_mem_bytes=64 * 1024 * 1024)
        rec = cursor.log.launches[1]
        device.launch_count = 1
        out = cursor.consult(
            device, rec.kernel_name, rec.grid, rec.block, rec.args,
            rec.shared_bytes, instrumented=False,
        )
        assert out is None and cursor.tracking  # one boundary tolerated
        cursor.divergent = {5}  # still divergent at the next boundary
        device.launch_count = 2
        rec = cursor.log.launches[2]
        out = cursor.consult(
            device, rec.kernel_name, rec.grid, rec.block, rec.args,
            rec.shared_bytes, instrumented=False,
        )
        assert out is None and not cursor.tracking  # patience exhausted
        assert cursor.converged_at is None

    def test_cuda_error_poisons_every_state(self, tmp_path):
        # TRACKING: permanently off.
        cursor = self._tracking_cursor(tmp_path)
        cursor.disarm_tail()
        assert not cursor.tracking and not cursor.armed
        # PRE: pre-target replay survives, but the tail can never arm.
        _, log = _record(ReallocApp())
        path = tmp_path / "replay2.bin"
        save_replay_log(log, path)
        pre = ReplayRef(path=str(path), stop_launch=2, tail=True).cursor()
        pre.disarm_tail()
        assert pre.armed and not pre.tail
