"""Golden-replay unit tests: recording, on-disk round-trip, cursor guards.

Campaign-level parity (serial/parallel/resumed ``results.csv`` bytes) lives
in ``tests/core/test_fast_forward.py``; this file exercises the subsystem
directly: delta capture under realloc/free, the binary format, and the
cursor's fail-safe disarm rules.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.gpusim.device import Device
from repro.gpusim.replay import (
    ReplayCursor,
    ReplayRecorder,
    ReplayRef,
    load_replay_log,
    save_replay_log,
)
from repro.mem.memory import PAGE_SIZE
from repro.runner.app import AppContext, Application
from repro.runner.sandbox import SandboxConfig, run_app

_MODULE = """
.kernel fill
.params 2
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    MOV R3, c[0x0][0x4] ;
    SHL R4, R1, 2 ;
    IADD R4, R4, R2 ;
    IADD R5, R1, R3 ;
    STG [R4], R5 ;
    EXIT ;

.kernel bump
.params 1
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    SHL R4, R1, 2 ;
    IADD R4, R4, R2 ;
    LDG R5, [R4] ;
    IADD R5, R5, 1 ;
    STG [R4], R5 ;
    EXIT ;
"""


class ReallocApp(Application):
    """Launches across an alloc → free → realloc sequence.

    The second allocation reuses (part of) the freed address range, so a
    replay that mishandled allocator churn would restore stale bytes.
    """

    name = "replay_realloc_app"

    def run(self, ctx: AppContext) -> None:
        cuda = ctx.cuda
        module = cuda.load_module(_MODULE)
        fill = cuda.get_function(module, "fill")
        bump = cuda.get_function(module, "bump")

        first = cuda.alloc(64, dtype=np.int32)
        cuda.launch(fill, 2, 32, first.address, 100)
        cuda.launch(bump, 2, 32, first.address)
        first.free()

        second = cuda.alloc(96, dtype=np.int32)
        cuda.launch(fill, 3, 32, second.address, 500)
        cuda.launch(bump, 3, 32, second.address)
        result = second.to_host()
        ctx.print("sum", int(result.sum()))
        second.free()


def _record(app, config=None) -> tuple:
    recorder = ReplayRecorder()
    artifacts = run_app(app, config=config, recorder=recorder)
    log = recorder.log()
    assert log is not None
    return artifacts, log


class TestRecording:
    def test_one_delta_per_launch(self):
        _, log = _record(ReallocApp())
        assert [(rec.kernel_name, rec.instance) for rec in log.launches] == [
            ("fill", 0), ("bump", 0), ("fill", 1), ("bump", 1),
        ]
        assert all(rec.pages.size > 0 for rec in log.launches)

    def test_counter_deltas_sum_to_run_totals(self):
        artifacts, log = _record(ReallocApp())
        assert (
            sum(rec.instructions for rec in log.launches)
            == artifacts.instructions_executed
        )
        assert sum(rec.warps for rec in log.launches) == artifacts.warps_launched

    def test_faulted_launch_aborts_recording(self):
        class Crashing(Application):
            name = "replay_crash_app"

            def run(self, ctx: AppContext) -> None:
                module = ctx.cuda.load_module(_MODULE)
                bump = ctx.cuda.get_function(module, "bump")
                ctx.cuda.launch(bump, 1, 32, 0)  # unmapped address

        recorder = ReplayRecorder()
        artifacts = run_app(Crashing(), recorder=recorder)
        # The driver absorbs the device fault into a sticky CUDA error; the
        # recording must still be discarded (partial writes happened).
        assert artifacts.cuda_errors
        assert recorder.log() is None

    def test_stop_launch_lookup(self):
        _, log = _record(ReallocApp())
        assert log.stop_launch_for("fill", 0) == 0
        assert log.stop_launch_for("bump", 1) == 3
        assert log.stop_launch_for("fill", 7) is None
        assert log.stop_launch_for("nope", 0) is None


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        loaded = load_replay_log(path)
        assert loaded.mem_size == log.mem_size
        assert len(loaded.launches) == len(log.launches)
        for original, thawed in zip(log.launches, loaded.launches):
            assert thawed.kernel_name == original.kernel_name
            assert thawed.instance == original.instance
            assert thawed.grid == original.grid
            assert thawed.block == original.block
            assert thawed.args == original.args
            assert thawed.instructions == original.instructions
            assert thawed.cycles == original.cycles
            assert np.array_equal(thawed.pages, original.pages)
            assert np.array_equal(thawed.data, original.data)

    def test_load_is_cached_per_process(self, tmp_path):
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        assert load_replay_log(path) is load_replay_log(path)

    def test_overwritten_log_reloaded(self, tmp_path):
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        first = load_replay_log(path)
        import os

        save_replay_log(log, path)
        os.utime(path, ns=(1, 1))  # force a different mtime
        assert load_replay_log(path) is not first

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "not_a_log.bin"
        path.write_bytes(b"garbage that is not a replay log")
        with pytest.raises(ReproError, match="bad magic"):
            load_replay_log(path)

    def test_unreadable_ref_degrades_to_none(self, tmp_path):
        ref = ReplayRef(path=str(tmp_path / "missing.bin"), stop_launch=2)
        assert ref.cursor() is None


class TestCursorReplay:
    def _replay_run(self, stop_launch: int, tmp_path):
        """One recorded golden + one fast-forwarded re-run of ReallocApp."""
        golden, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        cursor = ReplayRef(path=str(path), stop_launch=stop_launch).cursor()
        replayed = run_app(ReallocApp(), replay=cursor)
        return golden, replayed, cursor

    @pytest.mark.parametrize("stop_launch", [1, 2, 3, 4])
    def test_replayed_run_is_bit_identical(self, stop_launch, tmp_path):
        golden, replayed, cursor = self._replay_run(stop_launch, tmp_path)
        assert replayed.stdout == golden.stdout
        assert replayed.instructions_executed == golden.instructions_executed
        assert replayed.cycles == golden.cycles
        assert replayed.warps_launched == golden.warps_launched
        assert replayed.exit_status == 0 and not replayed.crashed
        assert cursor.skipped == stop_launch
        assert replayed.replay_launches_skipped == stop_launch

    def test_disarms_at_stop_launch(self, tmp_path):
        _, _, cursor = self._replay_run(2, tmp_path)
        assert not cursor.armed  # reached the target, simulated from there

    def test_instrumented_launch_never_replayed(self, tmp_path):
        """The divergence guard: any instrumented launch (the injection
        target and anything after it) must simulate, even inside the
        replay window."""
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        cursor = ReplayRef(path=str(path), stop_launch=4).cursor()
        device = Device(global_mem_bytes=64 * 1024 * 1024)
        rec = cursor.consult(
            device,
            log.launches[0].kernel_name,
            log.launches[0].grid,
            log.launches[0].block,
            log.launches[0].args,
            log.launches[0].shared_bytes,
            instrumented=True,
        )
        assert rec is None and not cursor.armed

    def test_metadata_mismatch_disarms(self, tmp_path):
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        cursor = ReplayRef(path=str(path), stop_launch=4).cursor()
        device = Device(global_mem_bytes=64 * 1024 * 1024)
        rec = cursor.consult(
            device,
            "some_other_kernel",
            log.launches[0].grid,
            log.launches[0].block,
            log.launches[0].args,
            log.launches[0].shared_bytes,
            instrumented=False,
        )
        assert rec is None and not cursor.armed

    def test_mem_size_mismatch_disarms(self, tmp_path):
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        cursor = ReplayRef(path=str(path), stop_launch=4).cursor()
        small = Device(global_mem_bytes=1 << 20)
        first = log.launches[0]
        rec = cursor.consult(
            small, first.kernel_name, first.grid, first.block, first.args,
            first.shared_bytes, instrumented=False,
        )
        assert rec is None and not cursor.armed

    def test_stop_launch_clamped_to_log(self, tmp_path):
        _, log = _record(ReallocApp())
        path = tmp_path / "replay.bin"
        save_replay_log(log, path)
        cursor = ReplayRef(path=str(path), stop_launch=99).cursor()
        assert cursor.stop_launch == len(log.launches)


class TestDirtyPageTracking:
    def test_atomics_tracked(self):
        """Atomics mutate memory bypassing store32; the recorder must still
        see their pages (this bit 354.cg's reduction kernels)."""
        module = """
.kernel atomic_inc
.params 1
    MOV R2, c[0x0][0x0] ;
    MOV R3, 1 ;
    ATOM R4, [R2], R3 ;
    EXIT ;
"""

        class AtomicApp(Application):
            name = "replay_atomic_app"

            def run(self, ctx: AppContext) -> None:
                mod = ctx.cuda.load_module(module)
                func = ctx.cuda.get_function(mod, "atomic_inc")
                buf = ctx.cuda.alloc(4, dtype=np.int32)
                buf.from_host(np.zeros(4, dtype=np.int32))
                ctx.cuda.launch(func, 1, 32, buf.address)
                ctx.print("count", int(buf.to_host()[0]))

        _, log = _record(AtomicApp())
        assert log.launches[0].pages.size > 0

    def test_host_writes_outside_window_untracked(self):
        device = Device(global_mem_bytes=1 << 20)
        mem = device.global_mem
        address = mem.alloc(PAGE_SIZE)
        mem.write_bytes(address, b"x" * 16)  # no window open: untracked
        mem.begin_write_tracking()
        pages = mem.end_write_tracking()
        assert pages.size == 0
