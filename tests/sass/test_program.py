"""Unit tests for Kernel / SassModule containers."""

import pytest

from repro.errors import AssemblyError
from repro.sass import assemble, assemble_kernel
from repro.sass.program import SassModule


class TestKernel:
    def test_pcs_assigned(self):
        kernel = assemble_kernel("NOP ;\nNOP ;\nEXIT ;")
        assert [i.pc for i in kernel.instructions] == [0, 1, 2]

    def test_num_regs_counts_dest_and_sources(self):
        kernel = assemble_kernel("IADD R7, R2, R3 ;\nEXIT ;")
        assert kernel.num_regs == 8

    def test_num_regs_counts_memref_base(self):
        kernel = assemble_kernel("LDG.32 R0, [R9] ;\nEXIT ;")
        assert kernel.num_regs == 10

    def test_num_regs_counts_fp64_pair(self):
        kernel = assemble_kernel("DADD R4, R0, R2 ;\nEXIT ;")
        assert kernel.num_regs == 6  # pair R4:R5

    def test_num_regs_ignores_rz(self):
        kernel = assemble_kernel("MOV R1, RZ ;\nEXIT ;")
        assert kernel.num_regs == 2

    def test_static_opcode_counts(self):
        kernel = assemble_kernel("NOP ;\nNOP ;\nIADD R1, R2, R3 ;\nEXIT ;")
        counts = kernel.static_opcode_counts()
        assert counts == {"NOP": 2, "IADD": 1, "EXIT": 1}

    def test_str_renders_sass(self):
        kernel = assemble_kernel("IADD R1, R2, 5 ;\nEXIT ;", name="k")
        text = str(kernel)
        assert ".kernel k" in text
        assert "IADD R1, R2, 0x5 ;" in text


class TestModule:
    def test_get_missing_kernel(self):
        module = assemble(".kernel a\nEXIT ;")
        with pytest.raises(KeyError, match="available"):
            module.get("b")

    def test_duplicate_kernel_rejected(self):
        module = SassModule()
        module.add(assemble_kernel("EXIT ;", name="dup"))
        with pytest.raises(AssemblyError, match="duplicate kernel"):
            module.add(assemble_kernel("EXIT ;", name="dup"))

    def test_len_and_iter(self):
        module = assemble(".kernel a\nEXIT ;\n.kernel b\nEXIT ;")
        assert len(module) == 2
        assert {k.name for k in module} == {"a", "b"}
