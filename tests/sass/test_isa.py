"""Unit tests for the ISA opcode table."""

import pytest

from repro.sass.isa import (
    NUM_OPCODES,
    OPCODES,
    OPCODES_BY_NAME,
    Category,
    DestKind,
    executable_opcodes,
    opcode_by_id,
    opcode_info,
)


class TestTableShape:
    def test_exactly_171_opcodes(self):
        """The paper: 'the Volta ISA contains 171 opcodes' (Table III)."""
        assert NUM_OPCODES == 171

    def test_ids_are_dense_and_ordered(self):
        for index, info in enumerate(OPCODES):
            assert info.opcode_id == index

    def test_no_duplicate_names(self):
        assert len(OPCODES_BY_NAME) == NUM_OPCODES

    def test_executable_subset_is_substantial(self):
        assert len(executable_opcodes()) >= 50


class TestLookup:
    def test_by_name(self):
        assert opcode_info("FADD").category is Category.FP32

    def test_by_name_unknown(self):
        with pytest.raises(KeyError, match="FROB"):
            opcode_info("FROB")

    def test_by_id(self):
        assert opcode_by_id(opcode_info("IMAD").opcode_id).name == "IMAD"

    def test_by_id_out_of_range(self):
        with pytest.raises(IndexError):
            opcode_by_id(171)
        with pytest.raises(IndexError):
            opcode_by_id(-1)


class TestClassification:
    @pytest.mark.parametrize(
        "name,dest",
        [
            ("FADD", DestKind.GP),
            ("DADD", DestKind.GP_PAIR),
            ("FSETP", DestKind.PRED),
            ("ISETP", DestKind.PRED),
            ("STG", DestKind.NONE),
            ("BRA", DestKind.NONE),
            ("EXIT", DestKind.NONE),
            ("LDG", DestKind.GP),
            ("RED", DestKind.NONE),
            ("ATOM", DestKind.GP),
        ],
    )
    def test_dest_kinds(self, name, dest):
        assert opcode_info(name).dest_kind is dest

    def test_fp64_category(self):
        for name in ("DADD", "DMUL", "DFMA", "DSETP"):
            assert opcode_info(name).category is Category.FP64

    def test_writes_gp_property(self):
        assert opcode_info("IMAD").writes_gp
        assert not opcode_info("ISETP").writes_gp
        assert not opcode_info("EXIT").writes_gp

    def test_writes_pred_only_property(self):
        assert opcode_info("FSETP").writes_pred_only
        assert not opcode_info("FADD").writes_pred_only

    def test_control_opcodes_have_no_dest(self):
        for name in ("BRA", "SSY", "SYNC", "PBK", "BRK", "EXIT", "BAR", "NOP"):
            assert not opcode_info(name).has_dest
