"""Disassembler and binary-encoding round-trip tests."""

import pytest

from repro.errors import EncodingError
from repro.sass import (
    assemble,
    decode_module,
    disassemble,
    disassemble_kernel,
    encode_module,
)
from repro.sass.encoding import WORD_SIZE, decode_instruction, encode_instruction

_SAMPLE = """
.kernel sample
.params 3
.shared 64
    S2R R0, SR_CTAID.X ;
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    IMAD R3, R0, 32, R1 ;
    ISETP.GE.U32 P0, R3, R2 ;
@P0 EXIT ;
    SSY RECONV ;
@!P0 BRA SKIP ;
    LDG.32 R4, [R3+0x10] ;
    FFMA R5, R4, 2.5f, -R4 ;
    STS.32 [R3], R5 ;
SKIP:
    SYNC ;
RECONV:
    PBK DONE ;
LOOP:
    IADD R3, R3, -1 ;
    ISETP.LE P1, R3, 0 ;
@P1 BRK ;
    BRA LOOP ;
DONE:
    EXIT ;
"""


class TestTextRoundTrip:
    def test_disassemble_reassembles(self):
        module = assemble(_SAMPLE)
        text = disassemble(module)
        again = disassemble(assemble(text))
        assert text == again

    def test_preserves_instruction_count(self):
        module = assemble(_SAMPLE)
        again = assemble(disassemble(module))
        assert len(again.get("sample")) == len(module.get("sample"))

    def test_preserves_directives(self):
        kernel = assemble(disassemble(assemble(_SAMPLE))).get("sample")
        assert kernel.num_params == 3
        assert kernel.shared_bytes == 64

    def test_labels_regenerated_at_targets(self):
        text = disassemble_kernel(assemble(_SAMPLE).get("sample"))
        assert text.count(":") >= 3  # three branch targets


class TestBinaryRoundTrip:
    def test_module_roundtrip(self):
        module = assemble(_SAMPLE)
        blob = encode_module(module)
        decoded = decode_module(blob)
        assert disassemble(decoded) == disassemble(module)

    def test_word_size(self):
        module = assemble(".kernel k\nEXIT ;")
        instr = module.get("k").instructions[0]
        assert len(encode_instruction(instr)) == WORD_SIZE

    def test_instruction_roundtrip_guard(self):
        instr = assemble(".kernel k\n@!P3 IADD R1, R2, 0x12345678 ;\nEXIT ;").get(
            "k"
        ).instructions[0]
        decoded = decode_instruction(encode_instruction(instr))
        assert decoded.guard == instr.guard
        assert decoded.sources == instr.sources

    def test_bad_magic_rejected(self):
        with pytest.raises(EncodingError, match="magic"):
            decode_module(b"XXXX" + b"\x00" * 16)

    def test_corrupt_word_rejected(self):
        module = assemble(".kernel k\nEXIT ;")
        blob = bytearray(encode_module(module))
        blob[-1] ^= 0xFF  # clobber the sentinel
        with pytest.raises(EncodingError):
            decode_module(bytes(blob))

    def test_truncated_word_rejected(self):
        with pytest.raises(EncodingError):
            decode_instruction(b"\x00" * (WORD_SIZE - 1))
