"""Unit tests for the SASS text assembler."""

import pytest

from repro.errors import AssemblyError
from repro.sass import assemble, assemble_kernel
from repro.sass.operands import ConstMem, Imm, LabelRef, MemRef, Pred, Reg, SpecialReg
from repro.utils.bits import f32_to_bits


class TestBasicParsing:
    def test_minimal_kernel(self):
        kernel = assemble(".kernel k\n EXIT ;").get("k")
        assert len(kernel) == 1
        assert kernel.instructions[0].opcode == "EXIT"

    def test_directives(self):
        kernel = assemble(
            ".kernel k\n.params 3\n.shared 128\n.local 16\nEXIT ;"
        ).get("k")
        assert kernel.num_params == 3
        assert kernel.shared_bytes == 128
        assert kernel.local_bytes == 16

    def test_comments_ignored(self):
        kernel = assemble(".kernel k\n// a comment\nEXIT ; // trailing").get("k")
        assert len(kernel) == 1

    def test_multiple_kernels(self):
        module = assemble(".kernel a\nEXIT ;\n.kernel b\nEXIT ;")
        assert sorted(k.name for k in module) == ["a", "b"]

    def test_assemble_kernel_shortcut(self):
        kernel = assemble_kernel("NOP ;\nEXIT ;", name="snippet")
        assert kernel.name == "snippet"
        assert len(kernel) == 2


class TestOperands:
    def test_registers(self):
        instr = assemble_kernel("IADD R1, R2, R3 ;\nEXIT ;").instructions[0]
        assert instr.dest == Reg(1)
        assert instr.sources == (Reg(2), Reg(3))

    def test_rz(self):
        instr = assemble_kernel("IADD R1, RZ, R3 ;\nEXIT ;").instructions[0]
        assert instr.sources[0].is_rz

    def test_negated_and_abs_registers(self):
        instr = assemble_kernel("FADD R1, -R2, |R3| ;\nEXIT ;").instructions[0]
        assert instr.sources[0].negate
        assert instr.sources[1].absolute

    def test_immediates_decimal_hex_negative(self):
        instr = assemble_kernel("IADD3 R1, 10, 0x10, -2 ;\nEXIT ;").instructions[0]
        assert instr.sources[0] == Imm(10)
        assert instr.sources[1] == Imm(16)
        assert instr.sources[2] == Imm(0xFFFFFFFE)

    def test_float_immediate(self):
        instr = assemble_kernel("FMUL R1, R2, 1.5f ;\nEXIT ;").instructions[0]
        assert instr.sources[1] == Imm(f32_to_bits(1.5))

    def test_const_memory(self):
        instr = assemble_kernel("MOV R1, c[0x0][0x8] ;\nEXIT ;").instructions[0]
        assert instr.sources[0] == ConstMem(0, 8)

    def test_memory_operands(self):
        kernel = assemble_kernel(
            "LDG.32 R1, [R2] ;\nLDG.32 R3, [R4+0x10] ;\nLDG.32 R5, [R6-4] ;\nEXIT ;"
        )
        assert kernel.instructions[0].sources[0] == MemRef(2, 0)
        assert kernel.instructions[1].sources[0] == MemRef(4, 16)
        assert kernel.instructions[2].sources[0] == MemRef(6, -4)

    def test_special_register(self):
        instr = assemble_kernel("S2R R0, SR_TID.X ;\nEXIT ;").instructions[0]
        assert instr.sources[0] == SpecialReg("SR_TID.X")

    def test_predicates(self):
        instr = assemble_kernel("ISETP.LT P1, R2, R3, !P0 ;\nEXIT ;").instructions[0]
        assert instr.dest == Pred(1)
        assert instr.sources[2] == Pred(0, negate=True)


class TestGuardsAndLabels:
    def test_guard(self):
        instr = assemble_kernel("@P2 EXIT ;\nEXIT ;").instructions[0]
        assert instr.guard == Pred(2)

    def test_negated_guard(self):
        instr = assemble_kernel("@!P0 EXIT ;\nEXIT ;").instructions[0]
        assert instr.guard == Pred(0, negate=True)

    def test_label_resolution(self):
        kernel = assemble_kernel("L0:\n NOP ;\n BRA L0 ;\nEXIT ;")
        bra = kernel.instructions[1]
        assert isinstance(bra.sources[0], LabelRef)
        assert bra.sources[0].target_pc == 0
        assert bra.branch_target == 0

    def test_forward_label(self):
        kernel = assemble_kernel("BRA DONE ;\nNOP ;\nDONE:\nEXIT ;")
        assert kernel.instructions[0].branch_target == 2

    def test_modifiers(self):
        instr = assemble_kernel("ISETP.GE.U32 P0, R1, R2 ;\nEXIT ;").instructions[0]
        assert instr.modifiers == ("GE", "U32")


class TestErrors:
    @pytest.mark.parametrize(
        "text,match",
        [
            ("EXIT ;", "before any .kernel"),
            (".kernel k\nFROBNICATE R1 ;", "unknown opcode"),
            (".kernel k\nBRA NOWHERE ;\nEXIT ;", "undefined label"),
            (".kernel k\nIADD R1, R2, [R3 ;\nEXIT ;", "unbalanced"),
            (".kernel k\nL0:\nL0:\nEXIT ;", "duplicate label"),
            (".kernel k\n.params banana\nEXIT ;", "malformed directive"),
            (".kernel k\nFADD P0, R1, R2 ;\nEXIT ;", "register destination"),
            (".kernel k\nISETP.LT R0, R1, R2 ;\nEXIT ;", "predicate destination"),
            (".kernel k\nDADD R1, R2, R4 ;\nEXIT ;", "even register pair"),
            (".kernel k\nIADD R1, R2, NOT_A_LABEL ;\nEXIT ;", "label operand"),
        ],
    )
    def test_rejects(self, text, match):
        with pytest.raises(AssemblyError, match=match):
            assemble(text)

    def test_kernel_must_end_with_exit(self):
        with pytest.raises(AssemblyError, match="must end with EXIT"):
            assemble(".kernel k\nNOP ;")

    def test_line_numbers_in_errors(self):
        with pytest.raises(AssemblyError, match="line 3"):
            assemble(".kernel k\nNOP ;\nBOGUS ;")
