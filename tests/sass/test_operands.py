"""Operand value-object validation tests."""

import pytest

from repro.sass.operands import (
    ConstMem,
    Imm,
    LabelRef,
    MemRef,
    Pred,
    Reg,
    SpecialReg,
)


class TestReg:
    def test_range_validation(self):
        Reg(0)
        Reg(255)
        with pytest.raises(ValueError):
            Reg(256)
        with pytest.raises(ValueError):
            Reg(-1)

    def test_rz_detection(self):
        assert Reg(255).is_rz
        assert not Reg(254).is_rz

    def test_rendering_with_modifiers(self):
        assert str(Reg(3)) == "R3"
        assert str(Reg(3, negate=True)) == "-R3"
        assert str(Reg(3, absolute=True)) == "|R3|"
        assert str(Reg(3, negate=True, absolute=True)) == "-|R3|"
        assert str(Reg(255)) == "RZ"


class TestPred:
    def test_range_validation(self):
        Pred(0)
        Pred(7)
        with pytest.raises(ValueError):
            Pred(8)

    def test_pt_detection(self):
        assert Pred(7).is_pt
        assert str(Pred(7)) == "PT"

    def test_negation_rendering(self):
        assert str(Pred(2, negate=True)) == "!P2"


class TestImm:
    def test_32bit_bounds(self):
        Imm(0)
        Imm(0xFFFFFFFF)
        with pytest.raises(ValueError):
            Imm(0x1_0000_0000)
        with pytest.raises(ValueError):
            Imm(-1)

    def test_hex_rendering(self):
        assert str(Imm(255)) == "0xff"


class TestConstMem:
    def test_validation(self):
        ConstMem(0, 0)
        with pytest.raises(ValueError):
            ConstMem(-1, 0)
        with pytest.raises(ValueError):
            ConstMem(0, -4)

    def test_rendering(self):
        assert str(ConstMem(0, 16)) == "c[0x0][0x10]"


class TestMemRef:
    def test_rendering_variants(self):
        assert str(MemRef(2, 0)) == "[R2]"
        assert str(MemRef(2, 16)) == "[R2+0x10]"
        assert str(MemRef(2, -4)) == "[R2-0x4]"
        assert str(MemRef(None, 0x100)) == "[0x100]"
        assert str(MemRef(255, 0)) == "[RZ]"


class TestSpecialReg:
    def test_known_names_only(self):
        SpecialReg("SR_TID.X")
        with pytest.raises(ValueError):
            SpecialReg("SR_BANANA")


class TestLabelRef:
    def test_rendering(self):
        assert str(LabelRef("LOOP")) == "LOOP"
        assert LabelRef("LOOP", target_pc=4).target_pc == 4
