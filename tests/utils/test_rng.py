"""Unit tests for deterministic RNG streams."""

import pytest

from repro.utils.rng import SeedSequenceStream


class TestSeedSequenceStream:
    def test_same_seed_same_values(self):
        a = SeedSequenceStream(42).generator().random(5)
        b = SeedSequenceStream(42).generator().random(5)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = SeedSequenceStream(1).generator().random(5)
        b = SeedSequenceStream(2).generator().random(5)
        assert not (a == b).all()

    def test_children_are_independent(self):
        root = SeedSequenceStream(7)
        sites = root.child("sites").generator().random(5)
        inputs = root.child("inputs").generator().random(5)
        assert not (sites == inputs).all()

    def test_child_is_stable(self):
        a = SeedSequenceStream(7).child("sites").seed
        b = SeedSequenceStream(7).child("sites").seed
        assert a == b

    def test_nested_children_distinct(self):
        root = SeedSequenceStream(7)
        assert root.child("a").child("b").seed != root.child("b").child("a").seed

    def test_uniform_in_range(self):
        value = SeedSequenceStream(3).uniform()
        assert 0.0 <= value < 1.0

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            SeedSequenceStream(-1)
