"""Unit tests for the bit-manipulation helpers."""

import math

import pytest

from repro.utils.bits import (
    MASK32,
    bit_field_extract,
    bit_field_insert,
    bits_to_f32,
    bits_to_f64,
    f32_to_bits,
    f64_to_bits,
    flo,
    popcount,
    sign_extend,
    to_i32,
    to_i64,
    to_u32,
)


class TestTruncation:
    def test_to_u32_wraps(self):
        assert to_u32(0x1_0000_0003) == 3

    def test_to_u32_negative(self):
        assert to_u32(-1) == MASK32

    def test_to_i32_positive(self):
        assert to_i32(5) == 5

    def test_to_i32_sign_bit(self):
        assert to_i32(0xFFFFFFFF) == -1
        assert to_i32(0x80000000) == -(2**31)

    def test_to_i64_sign_bit(self):
        assert to_i64(0xFFFFFFFFFFFFFFFF) == -1


class TestSignExtend:
    def test_positive(self):
        assert sign_extend(0x7F, 8) == 127

    def test_negative(self):
        assert sign_extend(0x80, 8) == -128
        assert sign_extend(0xFF, 8) == -1

    def test_width_one(self):
        assert sign_extend(1, 1) == -1
        assert sign_extend(0, 1) == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sign_extend(1, 0)


class TestFloatViews:
    def test_f32_roundtrip(self):
        for value in (0.0, 1.0, -2.5, 3.14159, 1e-38, 1e38):
            assert bits_to_f32(f32_to_bits(value)) == pytest.approx(value, rel=1e-6)

    def test_f32_one(self):
        assert f32_to_bits(1.0) == 0x3F800000

    def test_f32_nan(self):
        assert math.isnan(bits_to_f32(0x7FC00000))

    def test_f64_roundtrip(self):
        for value in (0.0, -1.0, 2.718281828459045, 1e-300):
            assert bits_to_f64(f64_to_bits(value)) == value

    def test_f64_one(self):
        assert f64_to_bits(1.0) == 0x3FF0000000000000


class TestPopcountFlo:
    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0xFF) == 8
        assert popcount(0x80000001) == 2

    def test_popcount_negative_raises(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_flo_zero_is_all_ones(self):
        assert flo(0) == MASK32

    def test_flo_values(self):
        assert flo(1) == 0
        assert flo(0x80000000) == 31
        assert flo(0x00010000) == 16


class TestBitFields:
    def test_extract(self):
        assert bit_field_extract(0xABCD1234, 8, 8) == 0x12

    def test_extract_zero_width(self):
        assert bit_field_extract(0xFFFFFFFF, 4, 0) == 0

    def test_insert(self):
        assert bit_field_insert(0x0, 0xFF, 8, 8) == 0xFF00

    def test_insert_preserves_rest(self):
        assert bit_field_insert(0xAAAAAAAA, 0x5, 0, 4) == 0xAAAAAAA5

    def test_insert_zero_width_is_identity(self):
        assert bit_field_insert(0x1234, 0xFF, 4, 0) == 0x1234
