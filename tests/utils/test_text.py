"""Unit tests for the table formatter."""

import pytest

from repro.utils.text import format_histogram_row, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) <= max(len(l) for l in lines) for line in lines)
        assert "yyyy" in lines[3]

    def test_title(self):
        text = format_table(["h"], [["v"]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert text.splitlines()[1] == "========"

    def test_float_formatting(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.235" in text

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])


class TestHistogramRow:
    def test_contains_percentages(self):
        row = format_histogram_row("prog", {"SDC": 0.25, "DUE": 0.05, "Masked": 0.70})
        assert "SDC= 25.0%" in row
        assert "Masked= 70.0%" in row

    def test_bar_length_tracks_fraction(self):
        row = format_histogram_row("p", {"SDC": 0.5}, width=10)
        assert "#" * 5 in row
