"""CampaignEngine tests: one loop, three facades, identical results.

The parity class is the regression test for the historical parallel-runner
bug where workers rebuilt their sandbox from ``seed`` + ``instruction_budget``
only: with a non-default sandbox (``num_sms=4``, ``family="turing"``) the
pre-fix ``_run_one`` ran injections on a default Volta device, producing
records (SM ids) and outcomes that diverged from the serial campaign.
"""

import shutil

import pytest

from repro.core.campaign import CampaignConfig
from repro.core.engine import (
    CampaignEngine,
    EngineHooks,
    ParallelExecutor,
    SerialExecutor,
)
from repro.core.store import CampaignStore
from repro.errors import ReproError
from repro.runner.sandbox import SandboxConfig

_WORKLOAD = "314.omriq"
_N = 5


def _config() -> CampaignConfig:
    # Deliberately non-default sandbox: every field must reach the workers.
    return CampaignConfig(
        num_transient=_N,
        seed=13,
        sandbox=SandboxConfig(
            num_sms=4, family="turing", extra_env={"STUDY": "parity"}
        ),
    )


def _run(tmp, executor, interrupt=False):
    store = CampaignStore(tmp)
    engine = CampaignEngine(_WORKLOAD, _config(), executor=executor, store=store)
    result = engine.run_transient()
    if interrupt:
        # Simulate a killed campaign: drop two checkpoints, then resume with
        # a fresh engine (fresh process state) against the same store.
        for index in (1, 3):
            shutil.rmtree(tmp / "injections" / f"run_{index:05d}")
        engine = CampaignEngine(_WORKLOAD, _config(), executor=executor, store=store)
        result = engine.run_transient()
        assert engine.metrics.injections_loaded == _N - 2
    return result, (tmp / "results.csv").read_bytes(), engine


@pytest.mark.slow
class TestParity:
    """Serial, parallel and interrupted-then-resumed campaigns are identical."""

    @pytest.fixture(scope="class")
    def runs(self, tmp_path_factory):
        modes = {
            "serial": (SerialExecutor(), False),
            "parallel": (ParallelExecutor(max_workers=2), False),
            "resumed": (SerialExecutor(), True),
        }
        return {
            name: _run(tmp_path_factory.mktemp(name), executor, interrupt)
            for name, (executor, interrupt) in modes.items()
        }

    @pytest.mark.parametrize("mode", ["parallel", "resumed"])
    def test_results_csv_byte_identical(self, runs, mode):
        assert runs[mode][1] == runs["serial"][1]

    @pytest.mark.parametrize("mode", ["parallel", "resumed"])
    def test_site_lists_identical(self, runs, mode):
        assert [r.params for r in runs[mode][0].results] == [
            r.params for r in runs["serial"][0].results
        ]

    @pytest.mark.parametrize("mode", ["parallel", "resumed"])
    def test_records_identical(self, runs, mode):
        """Full-sandbox propagation: records carry SM ids, which depend on
        ``num_sms``; the pre-fix parallel worker diverged here."""
        assert [r.record for r in runs[mode][0].results] == [
            r.record for r in runs["serial"][0].results
        ]

    @pytest.mark.parametrize("mode", ["parallel", "resumed"])
    def test_tallies_identical(self, runs, mode):
        assert runs[mode][0].tally.fractions() == runs["serial"][0].tally.fractions()

    def test_sandbox_really_nondefault(self, runs):
        """The fixture must exercise a device the default config cannot
        produce, or this parity test would not catch config-dropping."""
        records = [r.record for r in runs["serial"][0].results if r.record.injected]
        assert records and all(r.sm_id < 4 for r in records)


class TestHooksAndMetrics:
    def test_hooks_and_metrics(self):
        phases = []
        seen = []

        class Hooks(EngineHooks):
            def on_phase(self, phase, seconds):
                phases.append(phase)

            def on_injection(self, index, outcome, completed, total, tally):
                seen.append((completed, total, tally.total))

        engine = CampaignEngine(
            _WORKLOAD, CampaignConfig(num_transient=3, seed=7), hooks=Hooks()
        )
        result = engine.run_transient()
        assert len(result.results) == 3
        assert ["golden", "replay", "profile", "select", "inject"] == phases
        assert [s[0] for s in seen] == [1, 2, 3]
        assert all(total == 3 for _, total, _ in seen)
        assert engine.metrics.injections_done == 3
        assert engine.metrics.injections_per_second > 0
        assert engine.metrics.tally.total == 3
        assert set(engine.metrics.phase_seconds) == set(phases)
        assert "inj/s" in engine.metrics.summary()


class TestPermanentEngine:
    def test_permanent_checkpoint_and_resume(self, tmp_path):
        store = CampaignStore(tmp_path)
        engine = CampaignEngine(_WORKLOAD, CampaignConfig(seed=7), store=store)
        sites = engine.select_permanent()[:3]
        first = engine.run_permanent(sites)
        assert store.completed_permanent_injections() == [0, 1, 2]

        resumed = CampaignEngine(_WORKLOAD, CampaignConfig(seed=7), store=store)
        second = resumed.run_permanent(resumed.select_permanent()[:3])
        assert resumed.metrics.injections_loaded == 3
        assert resumed.metrics.injections_done == 0
        assert [r.outcome.outcome for r in second.results] == [
            r.outcome.outcome for r in first.results
        ]
        assert second.tally.fractions() == first.tally.fractions()
        assert [r.weight for r in second.results] == [r.weight for r in first.results]
        assert [r.activations for r in second.results] == [
            r.activations for r in first.results
        ]

    def test_intermittent_through_engine(self):
        from repro.core.params import IntermittentParams, PermanentParams

        engine = CampaignEngine(_WORKLOAD, CampaignConfig(seed=7))
        site = PermanentParams(sm_id=0, lane_id=0, bit_mask=1 << 3, opcode_id=24)
        params = IntermittentParams(site, process="random",
                                    activation_probability=0.2, seed=1)
        results = engine.run_intermittent([params, params])
        assert len(results) == 2
        assert results[0].outcome.outcome == results[1].outcome.outcome


class TestGuards:
    def test_parallel_requires_registry_workload(self):
        from repro.core.engine import InjectionTask
        from repro.runner.sandbox import SandboxSpec

        task = InjectionTask(0, "not-registered", "transient", None, SandboxSpec())
        with pytest.raises(ReproError, match="registry"):
            list(ParallelExecutor(max_workers=2).run([task]))

    def test_mismatched_store_rejected(self, tmp_path):
        store = CampaignStore(tmp_path)
        CampaignEngine(
            _WORKLOAD, CampaignConfig(num_transient=2, seed=1), store=store
        ).run_transient()
        other = CampaignEngine(
            _WORKLOAD, CampaignConfig(num_transient=2, seed=2), store=store
        )
        with pytest.raises(ReproError, match="different"):
            other.run_transient()

    def test_bad_chunksize_rejected(self):
        with pytest.raises(ValueError, match="chunksize"):
            ParallelExecutor(chunksize=0)
