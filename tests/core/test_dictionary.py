"""Fault-dictionary tests (paper §V extension)."""

import pytest

from repro.core.bitflip import BitFlipModel
from repro.core.dictionary import DictionaryEntry, FaultDictionary
from repro.errors import ParamError

M = BitFlipModel


class TestEntries:
    def test_unknown_opcode_rejected(self):
        dictionary = FaultDictionary()
        with pytest.raises(ParamError, match="unknown opcode"):
            dictionary.add("FROB", DictionaryEntry(M.FLIP_SINGLE_BIT, 1.0))

    def test_invalid_weight(self):
        with pytest.raises(ParamError, match="weight"):
            DictionaryEntry(M.FLIP_SINGLE_BIT, 0.0)

    def test_invalid_value_range(self):
        with pytest.raises(ParamError, match="value range"):
            DictionaryEntry(M.FLIP_SINGLE_BIT, 1.0, 0.7, 0.2)

    def test_default_entries_used_for_unlisted_opcodes(self):
        dictionary = FaultDictionary()
        entries = dictionary.entries_for("IMAD")
        assert len(entries) == 1
        assert entries[0].model is M.FLIP_SINGLE_BIT

    def test_set_default_requires_entries(self):
        with pytest.raises(ParamError):
            FaultDictionary().set_default([])


class TestDraw:
    def test_draw_respects_value_range(self):
        dictionary = FaultDictionary(seed=0)
        dictionary.add("FADD", DictionaryEntry(M.FLIP_SINGLE_BIT, 1.0, 0.0, 0.25))
        for _ in range(100):
            model, value = dictionary.draw("FADD")
            assert model is M.FLIP_SINGLE_BIT
            assert 0.0 <= value < 0.25

    def test_draw_respects_weights(self):
        dictionary = FaultDictionary(seed=0)
        dictionary.add("FADD", DictionaryEntry(M.FLIP_SINGLE_BIT, 9.0))
        dictionary.add("FADD", DictionaryEntry(M.ZERO_VALUE, 1.0))
        models = [dictionary.draw("FADD")[0] for _ in range(500)]
        zero_fraction = sum(m is M.ZERO_VALUE for m in models) / 500
        assert 0.05 < zero_fraction < 0.18

    def test_conditioned_on_opcode(self):
        dictionary = FaultDictionary(seed=0)
        dictionary.add("FADD", DictionaryEntry(M.ZERO_VALUE, 1.0))
        dictionary.add("IMAD", DictionaryEntry(M.RANDOM_VALUE, 1.0))
        assert dictionary.draw("FADD")[0] is M.ZERO_VALUE
        assert dictionary.draw("IMAD")[0] is M.RANDOM_VALUE

    def test_low_mantissa_preset(self):
        dictionary = FaultDictionary.low_mantissa_fp()
        for _ in range(50):
            model, value = dictionary.draw("FFMA")
            assert model in (M.FLIP_SINGLE_BIT, M.FLIP_TWO_BITS)
            assert value < 0.5  # low mantissa half of the word
