"""Site-selection tests: uniformity over the profile, tuple translation."""

import numpy as np
import pytest

from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup
from repro.core.profile_data import KernelProfile, ProgramProfile
from repro.core.site_selection import (
    select_permanent_sites,
    select_stratified_sites,
    select_transient_site,
    select_transient_sites,
    stratum_weights,
)
from repro.errors import ParamError, ProfileError
from repro.sass.isa import opcode_by_id

G = InstructionGroup


def _profile() -> ProgramProfile:
    profile = ProgramProfile()
    profile.append(KernelProfile("alpha", 0, {"FADD": 60, "STG": 10}))
    profile.append(KernelProfile("beta", 0, {"IADD": 30}))
    profile.append(KernelProfile("alpha", 1, {"FADD": 10, "STG": 10}))
    return profile


class TestTransientSelection:
    def test_site_fields_valid(self):
        rng = np.random.default_rng(0)
        site = select_transient_site(_profile(), G.G_GP, BitFlipModel.RANDOM_VALUE, rng)
        assert site.kernel_name in ("alpha", "beta")
        assert 0 <= site.dest_reg_selector < 1
        assert 0 <= site.bit_pattern_value < 1

    def test_instruction_count_within_kernel_bounds(self):
        rng = np.random.default_rng(1)
        for _ in range(200):
            site = select_transient_site(_profile(), G.G_GP, BitFlipModel.FLIP_SINGLE_BIT, rng)
            if site.kernel_name == "beta":
                assert site.instruction_count < 30
            elif site.kernel_count == 0:
                assert site.instruction_count < 60
            else:
                assert site.instruction_count < 10

    def test_kernel_count_is_per_name_invocation(self):
        rng = np.random.default_rng(2)
        seen = set()
        for _ in range(300):
            site = select_transient_site(_profile(), G.G_GP, BitFlipModel.FLIP_SINGLE_BIT, rng)
            seen.add((site.kernel_name, site.kernel_count))
        assert ("alpha", 0) in seen and ("alpha", 1) in seen and ("beta", 0) in seen

    def test_distribution_proportional_to_counts(self):
        """Selection is uniform over dynamic instructions, so kernels are
        hit proportionally to their group instruction counts (60:30:10)."""
        rng = np.random.default_rng(3)
        sites = select_transient_sites(
            _profile(), G.G_GP, BitFlipModel.FLIP_SINGLE_BIT, 2000, rng
        )
        hits = {("alpha", 0): 0, ("beta", 0): 0, ("alpha", 1): 0}
        for site in sites:
            hits[(site.kernel_name, site.kernel_count)] += 1
        assert hits[("alpha", 0)] / 2000 == pytest.approx(0.6, abs=0.05)
        assert hits[("beta", 0)] / 2000 == pytest.approx(0.3, abs=0.05)
        assert hits[("alpha", 1)] / 2000 == pytest.approx(0.1, abs=0.05)

    def test_group_filter_restricts_population(self):
        rng = np.random.default_rng(4)
        for _ in range(100):
            site = select_transient_site(_profile(), G.G_FP32, BitFlipModel.FLIP_SINGLE_BIT, rng)
            assert site.kernel_name == "alpha"  # only FADD qualifies

    def test_empty_group_raises(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ProfileError, match="no G_FP64"):
            select_transient_site(_profile(), G.G_FP64, BitFlipModel.FLIP_SINGLE_BIT, rng)

    def test_deterministic_given_rng_seed(self):
        sites_a = select_transient_sites(
            _profile(), G.G_GP, BitFlipModel.FLIP_SINGLE_BIT, 20,
            np.random.default_rng(99),
        )
        sites_b = select_transient_sites(
            _profile(), G.G_GP, BitFlipModel.FLIP_SINGLE_BIT, 20,
            np.random.default_rng(99),
        )
        assert sites_a == sites_b

    def test_default_path_unchanged_by_kernels_parameter(self):
        """kernels=None must be bit-identical to the historic draw (the
        fixed-N byte-parity guarantee rides on this)."""
        legacy = select_transient_sites(
            _profile(), G.G_GP, BitFlipModel.FLIP_SINGLE_BIT, 20,
            np.random.default_rng(7),
        )
        explicit = select_transient_sites(
            _profile(), G.G_GP, BitFlipModel.FLIP_SINGLE_BIT, 20,
            np.random.default_rng(7), kernels=None,
        )
        assert legacy == explicit


class TestStratifiedSelection:
    def test_stratum_weights_are_per_static_kernel(self):
        assert stratum_weights(_profile(), G.G_GP) == {"alpha": 70, "beta": 30}

    def test_stratum_weights_empty_group_raises(self):
        with pytest.raises(ProfileError, match="to stratify"):
            stratum_weights(_profile(), G.G_FP64)

    def test_kernels_restricts_the_draw(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            site = select_transient_site(
                _profile(), G.G_GP, BitFlipModel.FLIP_SINGLE_BIT, rng,
                kernels=frozenset(("beta",)),
            )
            assert site.kernel_name == "beta"

    def test_kernels_spanning_invocations(self):
        """A stratum is a *static* kernel: both alpha invocations qualify."""
        rng = np.random.default_rng(1)
        seen = set()
        for _ in range(100):
            site = select_transient_site(
                _profile(), G.G_GP, BitFlipModel.FLIP_SINGLE_BIT, rng,
                kernels=frozenset(("alpha",)),
            )
            seen.add((site.kernel_name, site.kernel_count))
        assert seen == {("alpha", 0), ("alpha", 1)}

    def test_empty_stratum_raises_with_kernel_names(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ProfileError, match=r"in kernels \['beta'\]"):
            select_transient_site(
                _profile(), G.G_FP32, BitFlipModel.FLIP_SINGLE_BIT, rng,
                kernels=frozenset(("beta",)),  # beta has no FP32
            )

    def test_select_stratified_sites_follows_allocation(self):
        rng = np.random.default_rng(3)
        sites = select_stratified_sites(
            _profile(), G.G_GP, BitFlipModel.FLIP_SINGLE_BIT,
            {"alpha": 3, "beta": 2}, rng,
        )
        assert [site.kernel_name for site in sites] == (
            ["alpha"] * 3 + ["beta"] * 2
        )

    def test_zero_slot_strata_skipped(self):
        rng = np.random.default_rng(4)
        sites = select_stratified_sites(
            _profile(), G.G_GP, BitFlipModel.FLIP_SINGLE_BIT,
            {"alpha": 0, "beta": 2}, rng,
        )
        assert [site.kernel_name for site in sites] == ["beta", "beta"]


class TestPermanentSelection:
    def test_one_site_per_executed_opcode(self):
        rng = np.random.default_rng(0)
        sites = select_permanent_sites(_profile(), rng)
        names = {opcode_by_id(site.opcode_id).name for site in sites}
        assert names == {"FADD", "STG", "IADD"}

    def test_unused_opcodes_pruned(self):
        """Paper §IV-C: permanent experiments are skipped for unused opcodes."""
        rng = np.random.default_rng(0)
        sites = select_permanent_sites(_profile(), rng)
        assert len(sites) == 3  # not 171

    def test_sm_ids_restricted(self):
        rng = np.random.default_rng(0)
        sites = select_permanent_sites(_profile(), rng, sm_ids=[2, 5])
        assert {site.sm_id for site in sites} <= {2, 5}

    def test_sm_fallback_respects_device_sm_count(self):
        """Regression: the fallback used to hardcode ``integers(0, 16)``, so
        a selected sm_id could exceed a smaller device's SM count."""
        rng = np.random.default_rng(0)
        for _ in range(50):
            sites = select_permanent_sites(_profile(), rng, num_sms=4)
            assert all(site.sm_id < 4 for site in sites)

    def test_sm_fallback_defaults_to_default_family(self):
        from repro.arch.families import DEFAULT_FAMILY, arch_by_name

        limit = arch_by_name(DEFAULT_FAMILY).num_sms
        rng = np.random.default_rng(1)
        seen = set()
        for _ in range(100):
            seen |= {s.sm_id for s in select_permanent_sites(_profile(), rng)}
        assert max(seen) < limit
        assert max(seen) >= 16  # draws now cover the real device, not 0..15

    def test_masks_are_single_bit(self):
        rng = np.random.default_rng(0)
        for site in select_permanent_sites(_profile(), rng):
            assert bin(site.bit_mask).count("1") == 1

    def test_explicit_opcode_list(self):
        rng = np.random.default_rng(0)
        sites = select_permanent_sites(_profile(), rng, opcodes=["FADD"])
        assert len(sites) == 1

    def test_empty_profile_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ProfileError, match="no executed opcodes"):
            select_permanent_sites(ProgramProfile(), rng)

    def test_explicit_sm_id_beyond_device_rejected(self):
        """Regression: an explicit sm_ids list used to be accepted verbatim,
        so a site could target an SM the device doesn't have."""
        rng = np.random.default_rng(0)
        with pytest.raises(ParamError, match="sm_id 7 outside"):
            select_permanent_sites(_profile(), rng, sm_ids=[2, 7], num_sms=4)

    def test_negative_sm_id_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ParamError, match="sm_id -1 outside"):
            select_permanent_sites(_profile(), rng, sm_ids=[-1], num_sms=4)

    def test_explicit_sm_ids_within_device_accepted(self):
        rng = np.random.default_rng(0)
        sites = select_permanent_sites(_profile(), rng, sm_ids=[0, 3], num_sms=4)
        assert {site.sm_id for site in sites} <= {0, 3}

    def test_unexecuted_opcode_rejected(self):
        """Regression: an explicit opcode that never executed was silently
        accepted, producing a permanent site that can never activate."""
        rng = np.random.default_rng(0)
        with pytest.raises(ProfileError, match="'LDG' never executed"):
            select_permanent_sites(_profile(), rng, opcodes=["FADD", "LDG"])
