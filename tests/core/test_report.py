"""Statistics tests: confidence intervals (the paper's §IV-B claims)."""

import pytest

from repro.core.outcomes import Outcome, OutcomeRecord
from repro.core.report import (
    OutcomeTally,
    confidence_interval,
    error_margin,
    read_results_csv,
    render_ci_report,
    stratum_tallies_from_results,
    tally_from_results,
    z_value,
)
from repro.errors import ReproError


class TestPaperClaims:
    def test_100_injections_90_confidence_8_percent(self):
        """'100 injections provide results with 90% confidence intervals and
        +-8% error margins' (paper §IV-B)."""
        assert error_margin(100, confidence=0.90) == pytest.approx(0.08, abs=0.003)

    def test_1000_injections_95_confidence_3_percent(self):
        """'1000 injections are necessary to obtain results with 95%
        confidence intervals and +-3% error margins'."""
        assert error_margin(1000, confidence=0.95) == pytest.approx(0.03, abs=0.002)


class TestConfidenceInterval:
    def test_interval_contains_estimate(self):
        low, high = confidence_interval(0.3, 100)
        assert low < 0.3 < high

    def test_interval_clipped_to_unit_range(self):
        low, _ = confidence_interval(0.01, 10)
        _, high = confidence_interval(0.99, 10)
        assert low == 0.0 and high == 1.0

    def test_narrower_with_more_samples(self):
        low_small, high_small = confidence_interval(0.5, 100)
        low_big, high_big = confidence_interval(0.5, 10_000)
        assert high_big - low_big < high_small - low_small

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            confidence_interval(0.5, 0)
        with pytest.raises(ValueError):
            confidence_interval(1.5, 10)
        with pytest.raises(ValueError):
            confidence_interval(0.5, 10, confidence=0.0)
        with pytest.raises(ValueError):
            confidence_interval(0.5, 10, confidence=1.0)
        with pytest.raises(ValueError):
            confidence_interval(0.5, 10, confidence=1.5)


class TestZValue:
    def test_paper_table_values_pinned(self):
        """Regression for the exact inverse normal: the historic four-entry
        table's values must reproduce to 4 decimal places."""
        assert z_value(0.80) == pytest.approx(1.2816, abs=5e-5)
        assert z_value(0.90) == pytest.approx(1.6449, abs=5e-5)
        assert z_value(0.95) == pytest.approx(1.9600, abs=5e-5)
        assert z_value(0.99) == pytest.approx(2.5758, abs=5e-5)

    def test_arbitrary_levels_now_supported(self):
        """Regression: 0.85 / 0.975 used to raise out of the table lookup."""
        assert z_value(0.85) == pytest.approx(1.4395, abs=5e-5)
        assert z_value(0.975) == pytest.approx(2.2414, abs=5e-5)
        assert z_value(0.90) < z_value(0.911) < z_value(0.95)

    def test_out_of_range_rejected(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError, match="strictly between"):
                z_value(bad)


class TestOutcomeTally:
    def _record(self, outcome, potential=False):
        return OutcomeRecord(outcome, "x", potential_due=potential)

    def test_fractions(self):
        tally = OutcomeTally()
        for _ in range(3):
            tally.add(self._record(Outcome.SDC))
        tally.add(self._record(Outcome.DUE))
        for _ in range(6):
            tally.add(self._record(Outcome.MASKED))
        assert tally.fraction(Outcome.SDC) == 0.3
        assert tally.fraction(Outcome.DUE) == 0.1
        assert tally.fraction(Outcome.MASKED) == 0.6

    def test_weighted_add(self):
        tally = OutcomeTally()
        tally.add(self._record(Outcome.SDC), weight=0.1)
        tally.add(self._record(Outcome.DUE), weight=0.2)
        assert tally.fraction(Outcome.DUE) == pytest.approx(2 / 3)

    def test_potential_due_tracked(self):
        tally = OutcomeTally()
        tally.add(self._record(Outcome.MASKED, potential=True))
        tally.add(self._record(Outcome.MASKED))
        assert tally.potential_due_fraction() == 0.5

    def test_merge(self):
        a, b = OutcomeTally(), OutcomeTally()
        a.add(self._record(Outcome.SDC))
        b.add(self._record(Outcome.MASKED))
        merged = a.merge(b)
        assert merged.total == 2
        assert merged.fraction(Outcome.SDC) == 0.5

    def test_empty_tally(self):
        tally = OutcomeTally()
        assert tally.fraction(Outcome.SDC) == 0.0
        assert tally.potential_due_fraction() == 0.0

    def test_report_text(self):
        tally = OutcomeTally()
        for _ in range(10):
            tally.add(self._record(Outcome.SDC))
        text = tally.report(samples=10)
        assert "SDC=100.0%" in text
        assert "[" in text  # confidence bounds present

    def test_empty_tally_reports_na(self):
        """Regression: a zero-sample tally (an interrupted campaign's empty
        partial results) used to raise out of confidence_interval."""
        text = OutcomeTally().report()
        assert text == "SDC=n/a  DUE=n/a  Masked=n/a"

    def test_report_with_explicit_zero_samples(self):
        tally = OutcomeTally()
        tally.add(self._record(Outcome.SDC))
        assert "n/a" in tally.report(samples=0)


_CSV_HEADER = (
    "index,kernel,kernel_count,instruction_count,group,model,outcome,"
    "symptom,potential_due,injected,instructions\n"
)


def _write_results(tmp_path, rows=""):
    path = tmp_path / "results.csv"
    path.write_text(_CSV_HEADER + rows)
    return path


_ROWS = (
    "0,heat_step,0,10,G_GP,FLIP_SINGLE_BIT,SDC,output diff,False,True,100\n"
    "1,heat_step,1,20,G_GP,FLIP_SINGLE_BIT,Masked,,True,True,100\n"
    "2,field_copy,0,30,G_GP,FLIP_SINGLE_BIT,DUE,trap,False,True,50\n"
)


class TestResultsCsvReaders:
    def test_reads_file_or_store_directory(self, tmp_path):
        path = _write_results(tmp_path, _ROWS)
        assert len(read_results_csv(path)) == 3
        assert len(read_results_csv(tmp_path)) == 3  # directory resolves

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no results.csv"):
            read_results_csv(tmp_path / "nowhere")

    def test_tally_from_results(self, tmp_path):
        rows = read_results_csv(_write_results(tmp_path, _ROWS))
        tally = tally_from_results(rows)
        assert tally.total == 3
        assert tally.fraction(Outcome.SDC) == pytest.approx(1 / 3)
        assert tally.potential_due == 1

    def test_stratum_tallies_keyed_by_kernel(self, tmp_path):
        rows = read_results_csv(_write_results(tmp_path, _ROWS))
        strata = stratum_tallies_from_results(rows)
        assert set(strata) == {"heat_step", "field_copy"}
        assert strata["heat_step"].total == 2
        assert strata["field_copy"].fraction(Outcome.DUE) == 1.0


class TestRenderCiReport:
    def test_overall_and_per_stratum_rows(self, tmp_path):
        _write_results(tmp_path, _ROWS)
        out = render_ci_report(tmp_path, confidence=0.95)
        assert "confidence level: 95%" in out
        assert "(all)" in out
        assert "heat_step" in out and "field_copy" in out
        assert "[" in out  # intervals rendered

    def test_empty_results_render_na_not_crash(self, tmp_path):
        """Regression: n == 0 partial tallies must render n/a, not raise."""
        _write_results(tmp_path)
        out = render_ci_report(tmp_path)
        assert "n/a" in out
        assert "no completed injections" in out
