"""Statistics tests: confidence intervals (the paper's §IV-B claims)."""

import pytest

from repro.core.outcomes import Outcome, OutcomeRecord
from repro.core.report import OutcomeTally, confidence_interval, error_margin


class TestPaperClaims:
    def test_100_injections_90_confidence_8_percent(self):
        """'100 injections provide results with 90% confidence intervals and
        +-8% error margins' (paper §IV-B)."""
        assert error_margin(100, confidence=0.90) == pytest.approx(0.08, abs=0.003)

    def test_1000_injections_95_confidence_3_percent(self):
        """'1000 injections are necessary to obtain results with 95%
        confidence intervals and +-3% error margins'."""
        assert error_margin(1000, confidence=0.95) == pytest.approx(0.03, abs=0.002)


class TestConfidenceInterval:
    def test_interval_contains_estimate(self):
        low, high = confidence_interval(0.3, 100)
        assert low < 0.3 < high

    def test_interval_clipped_to_unit_range(self):
        low, _ = confidence_interval(0.01, 10)
        _, high = confidence_interval(0.99, 10)
        assert low == 0.0 and high == 1.0

    def test_narrower_with_more_samples(self):
        low_small, high_small = confidence_interval(0.5, 100)
        low_big, high_big = confidence_interval(0.5, 10_000)
        assert high_big - low_big < high_small - low_small

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            confidence_interval(0.5, 0)
        with pytest.raises(ValueError):
            confidence_interval(1.5, 10)
        with pytest.raises(ValueError):
            confidence_interval(0.5, 10, confidence=0.77)


class TestOutcomeTally:
    def _record(self, outcome, potential=False):
        return OutcomeRecord(outcome, "x", potential_due=potential)

    def test_fractions(self):
        tally = OutcomeTally()
        for _ in range(3):
            tally.add(self._record(Outcome.SDC))
        tally.add(self._record(Outcome.DUE))
        for _ in range(6):
            tally.add(self._record(Outcome.MASKED))
        assert tally.fraction(Outcome.SDC) == 0.3
        assert tally.fraction(Outcome.DUE) == 0.1
        assert tally.fraction(Outcome.MASKED) == 0.6

    def test_weighted_add(self):
        tally = OutcomeTally()
        tally.add(self._record(Outcome.SDC), weight=0.1)
        tally.add(self._record(Outcome.DUE), weight=0.2)
        assert tally.fraction(Outcome.DUE) == pytest.approx(2 / 3)

    def test_potential_due_tracked(self):
        tally = OutcomeTally()
        tally.add(self._record(Outcome.MASKED, potential=True))
        tally.add(self._record(Outcome.MASKED))
        assert tally.potential_due_fraction() == 0.5

    def test_merge(self):
        a, b = OutcomeTally(), OutcomeTally()
        a.add(self._record(Outcome.SDC))
        b.add(self._record(Outcome.MASKED))
        merged = a.merge(b)
        assert merged.total == 2
        assert merged.fraction(Outcome.SDC) == 0.5

    def test_empty_tally(self):
        tally = OutcomeTally()
        assert tally.fraction(Outcome.SDC) == 0.0
        assert tally.potential_due_fraction() == 0.0

    def test_report_text(self):
        tally = OutcomeTally()
        for _ in range(10):
            tally.add(self._record(Outcome.SDC))
        text = tally.report(samples=10)
        assert "SDC=100.0%" in text
        assert "[" in text  # confidence bounds present
