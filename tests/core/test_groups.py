"""Instruction-group (arch state id) classification tests."""

import pytest

from repro.core.groups import (
    InstructionGroup,
    base_group,
    in_group,
    injectable,
    require_injectable,
)
from repro.errors import ParamError
from repro.sass.isa import OPCODES, opcode_info

G = InstructionGroup


class TestBaseGroups:
    @pytest.mark.parametrize(
        "opcode,group",
        [
            ("DADD", G.G_FP64),
            ("DFMA", G.G_FP64),
            ("FADD", G.G_FP32),
            ("FFMA", G.G_FP32),
            ("MUFU", G.G_FP32),
            ("I2F", G.G_FP32),  # conversions count as FP32
            ("LDG", G.G_LD),
            ("LDS", G.G_LD),
            ("ATOM", G.G_LD),  # atomics read memory and write a register
            ("FSETP", G.G_PR),
            ("ISETP", G.G_PR),
            ("DSETP", G.G_PR),  # dest kind (pred) dominates FP64 category
            ("VOTE", G.G_PR),
            ("STG", G.G_NODEST),
            ("BRA", G.G_NODEST),
            ("EXIT", G.G_NODEST),
            ("RED", G.G_NODEST),
            ("IADD", G.G_OTHERS),
            ("MOV", G.G_OTHERS),
            ("S2R", G.G_OTHERS),
            ("SHFL", G.G_OTHERS),
        ],
    )
    def test_classification(self, opcode, group):
        assert base_group(opcode_info(opcode)) is group

    def test_base_groups_partition_the_isa(self):
        """Every opcode lands in exactly one of groups 1..6."""
        base = (G.G_FP64, G.G_FP32, G.G_LD, G.G_PR, G.G_NODEST, G.G_OTHERS)
        for info in OPCODES:
            memberships = [g for g in base if in_group(info, g)]
            assert len(memberships) == 1, info.name


class TestAggregateGroups:
    def test_gppr_is_complement_of_nodest(self):
        for info in OPCODES:
            assert in_group(info, G.G_GPPR) == (base_group(info) is not G.G_NODEST)

    def test_gp_excludes_pr_and_nodest(self):
        for info in OPCODES:
            expected = base_group(info) not in (G.G_NODEST, G.G_PR)
            assert in_group(info, G.G_GP) == expected

    def test_gp_is_subset_of_gppr(self):
        for info in OPCODES:
            if in_group(info, G.G_GP):
                assert in_group(info, G.G_GPPR)

    def test_table_ii_identities(self):
        """G_GPPR = all - G_NODEST;  G_GP = all - G_NODEST - G_PR."""
        total = len(OPCODES)
        nodest = sum(in_group(i, G.G_NODEST) for i in OPCODES)
        pr = sum(in_group(i, G.G_PR) for i in OPCODES)
        gppr = sum(in_group(i, G.G_GPPR) for i in OPCODES)
        gp = sum(in_group(i, G.G_GP) for i in OPCODES)
        assert gppr == total - nodest
        assert gp == total - nodest - pr


class TestInjectability:
    def test_nodest_not_injectable(self):
        assert not injectable(G.G_NODEST)
        with pytest.raises(ParamError, match="no destination"):
            require_injectable(G.G_NODEST)

    def test_all_other_groups_injectable(self):
        for group in G:
            if group is not G.G_NODEST:
                require_injectable(group)  # must not raise

    def test_group_ids_match_table_ii(self):
        assert [g.value for g in G] == [1, 2, 3, 4, 5, 6, 7, 8]
