"""Outcome-classification tests: the full Table V matrix."""


from repro.core.outcomes import Outcome, classify
from repro.runner.app import Application
from repro.runner.artifacts import CheckResult, RunArtifacts


class PlainApp(Application):
    """Default check: exact stdout + file comparison."""

    name = "plain"


class TolerantApp(Application):
    """An app whose SDC-check script always passes (tolerance swallows all)."""

    name = "tolerant"

    def check(self, golden, observed):
        return CheckResult.ok()


def _golden() -> RunArtifacts:
    return RunArtifacts(stdout="result 42\n", files={"out": b"\x01\x02"})


def _observed(**overrides) -> RunArtifacts:
    artifacts = _golden()
    for key, value in overrides.items():
        setattr(artifacts, key, value)
    return artifacts


class TestDueRows:
    def test_timeout_is_due(self):
        record = classify(PlainApp(), _golden(), _observed(timed_out=True))
        assert record.outcome is Outcome.DUE
        assert "Timeout" in record.symptom

    def test_crash_is_due(self):
        record = classify(PlainApp(), _golden(),
                          _observed(crashed=True, crash_reason="boom"))
        assert record.outcome is Outcome.DUE
        assert "crash" in record.symptom

    def test_nonzero_exit_is_due(self):
        record = classify(PlainApp(), _golden(), _observed(exit_status=3))
        assert record.outcome is Outcome.DUE
        assert "exit status" in record.symptom

    def test_due_priority_over_sdc_signals(self):
        observed = _observed(timed_out=True, stdout="garbage")
        record = classify(PlainApp(), _golden(), observed)
        assert record.outcome is Outcome.DUE


class TestSdcRows:
    def test_stdout_difference(self):
        record = classify(PlainApp(), _golden(), _observed(stdout="result 43\n"))
        assert record.outcome is Outcome.SDC
        assert "Standard output" in record.symptom

    def test_output_file_difference(self):
        record = classify(PlainApp(), _golden(),
                          _observed(files={"out": b"\x01\x03"}))
        assert record.outcome is Outcome.SDC
        assert "Output file" in record.symptom

    def test_missing_output_file(self):
        record = classify(PlainApp(), _golden(), _observed(files={}))
        assert record.outcome is Outcome.SDC

    def test_application_specific_check(self):
        class AssertingApp(Application):
            name = "asserting"

            def check(self, golden, observed):
                return CheckResult.fail("Application-specific check failed")

        record = classify(AssertingApp(), _golden(), _observed())
        assert record.outcome is Outcome.SDC
        assert "Application-specific" in record.symptom


class TestMaskedRow:
    def test_identical_run_is_masked(self):
        record = classify(PlainApp(), _golden(), _observed())
        assert record.outcome is Outcome.MASKED
        assert record.symptom == "No difference detected"

    def test_tolerance_check_masks_file_difference(self):
        """The user-supplied check script is authoritative (paper §IV-A)."""
        record = classify(TolerantApp(), _golden(),
                          _observed(files={"out": b"\xff\xff"}))
        assert record.outcome is Outcome.MASKED


class TestPotentialDue:
    def test_masked_with_cuda_error(self):
        observed = _observed(cuda_errors=["ERROR_ILLEGAL_ADDRESS: ..."])
        record = classify(PlainApp(), _golden(), observed)
        assert record.outcome is Outcome.MASKED
        assert record.potential_due

    def test_sdc_with_dmesg(self):
        observed = _observed(stdout="bad\n", dmesg=["NVRM: Xid 13: ..."])
        record = classify(PlainApp(), _golden(), observed)
        assert record.outcome is Outcome.SDC
        assert record.potential_due

    def test_due_never_flagged_potential(self):
        observed = _observed(timed_out=True, dmesg=["NVRM: Xid 8: ..."])
        record = classify(PlainApp(), _golden(), observed)
        assert record.outcome is Outcome.DUE
        assert not record.potential_due

    def test_golden_anomalies_not_counted_again(self):
        golden = _golden()
        golden.dmesg = ["NVRM: Xid 99: pre-existing"]
        observed = _observed(dmesg=["NVRM: Xid 99: pre-existing"])
        record = classify(PlainApp(), golden, observed)
        assert not record.potential_due

    def test_swapped_anomaly_at_same_count_is_new(self):
        # Same *number* of anomalies, different content: the injected run
        # traded the golden run's entry for a fresh one, which must still
        # flag a potential DUE (multiset membership, not length).
        golden = _golden()
        golden.dmesg = ["NVRM: Xid 99: pre-existing"]
        observed = _observed(dmesg=["NVRM: Xid 13: fresh fault"])
        record = classify(PlainApp(), golden, observed)
        assert record.potential_due

    def test_duplicate_of_golden_anomaly_is_new(self):
        # Two occurrences of an entry the golden run produced once: the
        # second one is an injection artifact.
        golden = _golden()
        golden.cuda_errors = ["ERROR_ILLEGAL_ADDRESS: x"]
        observed = _observed(
            cuda_errors=["ERROR_ILLEGAL_ADDRESS: x", "ERROR_ILLEGAL_ADDRESS: x"]
        )
        record = classify(PlainApp(), golden, observed)
        assert record.potential_due

    def test_fewer_anomalies_than_golden_is_not_new(self):
        golden = _golden()
        golden.dmesg = ["NVRM: Xid 99: a", "NVRM: Xid 99: b"]
        observed = _observed(dmesg=["NVRM: Xid 99: a"])
        record = classify(PlainApp(), golden, observed)
        assert not record.potential_due

    def test_label_rendering(self):
        observed = _observed(cuda_errors=["x"])
        record = classify(PlainApp(), _golden(), observed)
        assert "(potential DUE)" in record.label()
