"""Profiler tests: exact vs approximate modes, predication exclusion."""


from repro.core.profiler import ProfilerTool, ProfilingMode
from repro.runner.app import AppContext, Application
from repro.runner.sandbox import run_app

_PREDICATED = """
.kernel pred_kernel
.params 0
    S2R R1, SR_TID.X ;
    ISETP.LT P0, R1, 10 ;
@P0 IADD R2, R1, 1 ;
    EXIT ;
"""

# A kernel whose dynamic instruction count depends on a parameter.
_LOOPY = """
.kernel loopy
.params 1
    MOV R1, RZ ;
    MOV R2, c[0x0][0x0] ;
    PBK DONE ;
LOOP:
    ISETP.GE P0, R1, R2 ;
@P0 BRK ;
    IADD R1, R1, 1 ;
    BRA LOOP ;
DONE:
    EXIT ;
"""


class PredicatedApp(Application):
    name = "pred_app"

    def run(self, ctx: AppContext) -> None:
        module = ctx.cuda.load_module(_PREDICATED)
        func = ctx.cuda.get_function(module, "pred_kernel")
        ctx.cuda.launch(func, 1, 32)


class LoopyApp(Application):
    """Launches the same static kernel with different trip counts."""

    name = "loopy_app"

    def __init__(self, trip_counts=(4, 8)):
        self.trip_counts = trip_counts

    def run(self, ctx: AppContext) -> None:
        module = ctx.cuda.load_module(_LOOPY)
        func = ctx.cuda.get_function(module, "loopy")
        for count in self.trip_counts:
            ctx.cuda.launch(func, 1, 32, count)


def _profile(app, mode):
    profiler = ProfilerTool(mode)
    run_app(app, preload=[profiler])
    return profiler.profile


class TestExactProfiling:
    def test_counts_per_thread(self):
        profile = _profile(PredicatedApp(), ProfilingMode.EXACT)
        counts = profile.kernels[0].counts
        assert counts["S2R"] == 32
        assert counts["ISETP"] == 32
        assert counts["EXIT"] == 32

    def test_predicated_off_instructions_excluded(self):
        """Paper §III-A: 'Instructions that are not executed based on a
        predicate register are not included in the profile.'"""
        profile = _profile(PredicatedApp(), ProfilingMode.EXACT)
        assert profile.kernels[0].counts["IADD"] == 10  # only lanes 0..9

    def test_one_record_per_dynamic_kernel(self):
        profile = _profile(LoopyApp((4, 8, 2)), ProfilingMode.EXACT)
        assert profile.num_dynamic_kernels == 3
        assert profile.num_static_kernels == 1
        assert [kp.invocation for kp in profile.kernels] == [0, 1, 2]

    def test_data_dependent_counts_differ(self):
        profile = _profile(LoopyApp((4, 8)), ProfilingMode.EXACT)
        first, second = profile.kernels
        assert second.counts["IADD"] == 2 * first.counts["IADD"]


class TestApproximateProfiling:
    def test_matches_exact_for_identical_instances(self):
        exact = _profile(LoopyApp((6, 6, 6)), ProfilingMode.EXACT)
        approx = _profile(LoopyApp((6, 6, 6)), ProfilingMode.APPROXIMATE)
        assert exact.total_count() == approx.total_count()
        for kp_exact, kp_approx in zip(exact.kernels, approx.kernels):
            assert kp_exact.counts == kp_approx.counts

    def test_diverges_for_varying_instances(self):
        """The approximation error the paper's Figure 2 studies."""
        exact = _profile(LoopyApp((4, 8)), ProfilingMode.EXACT)
        approx = _profile(LoopyApp((4, 8)), ProfilingMode.APPROXIMATE)
        # Approximate copies instance 0's counts for instance 1.
        assert approx.kernels[1].counts == approx.kernels[0].counts
        assert exact.kernels[1].counts != approx.kernels[1].counts

    def test_approximated_flag(self):
        approx = _profile(LoopyApp((4, 8)), ProfilingMode.APPROXIMATE)
        assert not approx.kernels[0].approximated
        assert approx.kernels[1].approximated

    def test_only_first_instance_instrumented(self):
        """Approximate profiling must execute fewer instrumented instructions
        (this is the Figure 4 overhead argument)."""
        app = LoopyApp((16, 16, 16, 16))
        exact_tool = ProfilerTool(ProfilingMode.EXACT)
        approx_tool = ProfilerTool(ProfilingMode.APPROXIMATE)

        exact_art = run_app(app, preload=[exact_tool])
        approx_art = run_app(app, preload=[approx_tool])
        # Both ran the same program...
        assert exact_art.instructions_executed == approx_art.instructions_executed
        # ...but approximate instrumented only 1 of 4 instances.
        exact_counted = exact_tool.profile.total_count()
        approx_counted = sum(
            kp.total() for kp in approx_tool.profile.kernels if not kp.approximated
        )
        assert approx_counted * 4 == exact_counted


class TestApproximateProfilePinned:
    # The exact per-opcode histogram of one LoopyApp(4) launch (32 threads,
    # 4 loop iterations); approximate mode copies it to later instances.
    _FIRST = {
        "MOV": 64, "PBK": 32, "ISETP": 160, "IADD": 128,
        "BRA": 128, "BRK": 32, "EXIT": 32,
    }

    def test_approximate_profile_contents_pinned(self):
        """Pin the complete approximate-mode profile of a mixed sequence.

        Guards the launch-enter bookkeeping (a dead ``_pending`` attribute
        used to be assigned there): later instances must append a *copy* of
        the first instance's counts, flagged approximated, in launch order,
        and the first instance's own record must come from instrumentation.
        """
        profile = _profile(LoopyApp((4, 8, 2)), ProfilingMode.APPROXIMATE)
        assert [kp.kernel_name for kp in profile.kernels] == ["loopy"] * 3
        assert [kp.invocation for kp in profile.kernels] == [0, 1, 2]
        assert [kp.approximated for kp in profile.kernels] == [
            False, True, True,
        ]
        assert [kp.counts for kp in profile.kernels] == [self._FIRST] * 3
        # The copies are independent dicts, not aliases of instance 0's.
        profile.kernels[1].counts["MOV"] = 0
        assert profile.kernels[0].counts == self._FIRST

    def test_profiler_state_clean_after_run(self):
        """The tool carries no leftover per-launch state once the run ends."""
        profiler = ProfilerTool(ProfilingMode.APPROXIMATE)
        run_app(LoopyApp((4, 8)), preload=[profiler])
        assert profiler._current is None
        assert profiler._current_func is None
        assert not hasattr(profiler, "_pending")


class TestProfileDeterminism:
    def test_two_exact_profiles_identical(self):
        profile_a = _profile(LoopyApp((5, 9)), ProfilingMode.EXACT)
        profile_b = _profile(LoopyApp((5, 9)), ProfilingMode.EXACT)
        assert profile_a.to_text() == profile_b.to_text()
