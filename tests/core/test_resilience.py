"""Campaign resilience: retry, quarantine, interrupt and resume paths.

The chaos workloads below are OMriq variants that misbehave *only when the
injected fault corrupts the device output* — a deterministic function of
the campaign seed — so exactly the same K of N tasks fail under every
executor, and serial, parallel and resumed campaigns containing failures
can be compared byte-for-byte.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.core.engine import CampaignEngine, EngineHooks, ParallelExecutor
from repro.core.report import tally_from_trace
from repro.core.resilience import (
    HARNESS_FAILURE_SYMPTOM,
    RetryPolicy,
    TaskFailure,
    quarantine_outcome,
)
from repro.core.store import CampaignStore
from repro.errors import ReproError
from repro.obs import MemorySink, Tracer
from repro.runner.sandbox import SandboxConfig
from repro.workloads.omriq import OMriq
from repro.workloads.registry import WORKLOADS

# Seed 2 makes exactly 2 of 12 (and 1 of 8) transient injections corrupt
# the output badly enough (non-finite or |q| > 1e6) to trip the chaos
# predicate — verified constants, relied on by every campaign test here.
_SEED = 2
_N = 12
_N_SMALL = 8
_K = 2
_K_SMALL = 1

# Fast-but-real backoff for tests (jitter off: delays are asserted exactly).
_FAST_RETRY = dict(backoff_base=0.001, backoff_factor=1.0, backoff_max=0.01,
                   jitter=0.0)


class ChaosOMriq(OMriq):
    """Misbehaves (per ``CHAOS_MODE``) whenever the output is corrupted."""

    name = "999.chaos"
    description = "OMriq variant that fails the harness on corrupted output"

    def run(self, ctx) -> None:
        super().run(ctx)
        data = np.frombuffer(ctx.files[self.output_file], dtype=np.float32)
        finite = data[np.isfinite(data)]
        corrupted = finite.size != data.size or bool((np.abs(finite) > 1e6).any())
        if not corrupted:
            return
        mode = ctx.getenv("CHAOS_MODE", "")
        if mode == "raise":
            # RuntimeError is deliberately outside run_app's catch list: it
            # escapes the sandbox and kills the injection task itself.
            raise RuntimeError("chaos: corrupted device output")
        if mode == "exit":
            os._exit(23)  # hard worker death: breaks the whole pool
        if mode == "hang":
            while True:  # hangs *outside* simulated execution: only the
                time.sleep(0.05)  # parent-side wall-clock deadline sees it


class FlakyOMriq(OMriq):
    """Fails exactly one run (by sequence number), then behaves."""

    name = "999.flaky"
    description = "OMriq variant with one transient harness failure"

    def run(self, ctx) -> None:
        flaky_dir = ctx.getenv("FLAKY_DIR")
        if flaky_dir:
            counter = Path(flaky_dir) / "runs"
            count = int(counter.read_text()) + 1 if counter.exists() else 1
            counter.write_text(str(count))
            if count == int(ctx.getenv("FLAKY_FAIL_RUN", "3")):
                raise RuntimeError("flaky: transient harness failure")
        super().run(ctx)


@pytest.fixture(autouse=True, scope="module")
def _register_chaos_workloads():
    WORKLOADS[ChaosOMriq.name] = ChaosOMriq
    WORKLOADS[FlakyOMriq.name] = FlakyOMriq
    yield
    WORKLOADS.pop(ChaosOMriq.name, None)
    WORKLOADS.pop(FlakyOMriq.name, None)


def _chaos_config(mode: str, retry: RetryPolicy, num: int = _N):
    return repro.CampaignConfig(
        workload=ChaosOMriq.name,
        num_transient=num,
        seed=_SEED,
        sandbox=SandboxConfig(extra_env={"CHAOS_MODE": mode} if mode else {}),
        retry=retry,
    )


def _quarantined(result) -> list[int]:
    return [
        index
        for index, item in enumerate(result.results)
        if item.outcome.symptom == HARNESS_FAILURE_SYMPTOM
    ]


# -- RetryPolicy ---------------------------------------------------------------


class TestRetryPolicy:
    def test_validates_knobs(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ReproError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ReproError):
            RetryPolicy(task_timeout=0.0)
        with pytest.raises(ReproError):
            RetryPolicy(on_failure="explode")

    def test_should_retry_counts_total_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(1)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)
        assert not RetryPolicy(max_attempts=1).should_retry(1)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0,
                             backoff_max=0.3, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.3)  # capped
        assert policy.delay(9) == pytest.approx(0.3)

    def test_jitter_is_deterministic_but_desynchronised(self):
        policy = RetryPolicy(backoff_base=0.1, jitter=0.5, seed=7)
        assert policy.delay(1, key=4) == policy.delay(1, key=4)
        assert policy.delay(1, key=4) != policy.delay(1, key=5)
        assert 0.1 <= policy.delay(1, key=4) <= 0.15
        # Same knobs, different policy seed: a different schedule.
        other = RetryPolicy(backoff_base=0.1, jitter=0.5, seed=8)
        assert policy.delay(1, key=4) != other.delay(1, key=4)

    def test_quarantine_outcome_is_a_monitor_due(self):
        record = quarantine_outcome(TaskFailure(3, 2, "RuntimeError: boom"))
        assert record.outcome is repro.Outcome.DUE
        assert record.symptom == HARNESS_FAILURE_SYMPTOM
        assert not record.potential_due


# -- serial campaigns with failing tasks ---------------------------------------


class TestSerialFailures:
    def test_quarantines_failing_tasks_as_harness_dues(self):
        retry = RetryPolicy(max_attempts=2, **_FAST_RETRY)
        engine = CampaignEngine(
            ChaosOMriq.name, _chaos_config("raise", retry)
        )
        result = engine.run_transient()

        assert len(result.results) == _N
        quarantined = _quarantined(result)
        assert len(quarantined) == _K
        for index in quarantined:
            item = result.results[index]
            assert item.outcome.outcome is repro.Outcome.DUE
            assert not item.record.injected
            assert item.instructions == 0 and item.wall_time == 0.0
        assert engine.metrics.quarantined == _K
        # Each poison task burns (max_attempts - 1) retries before giving up.
        assert engine.metrics.retries == _K * (retry.max_attempts - 1)
        assert result.tally.counts[repro.Outcome.DUE] >= _K
        assert "quarantined" in engine.metrics.summary()

    def test_on_failure_raise_aborts_the_campaign(self):
        retry = RetryPolicy(max_attempts=1, on_failure="raise", **_FAST_RETRY)
        engine = CampaignEngine(
            ChaosOMriq.name, _chaos_config("raise", retry)
        )
        with pytest.raises(ReproError, match="failed after 1 attempt"):
            engine.run_transient()

    def test_retry_then_succeed_matches_a_clean_campaign(self, tmp_path):
        flaky_dir = tmp_path / "flaky"
        flaky_dir.mkdir()
        retry = RetryPolicy(max_attempts=3, **_FAST_RETRY)

        clean_store = CampaignStore(tmp_path / "clean")
        clean = repro.run_campaign(
            repro.CampaignConfig(
                workload=FlakyOMriq.name, num_transient=4, seed=_SEED,
                retry=retry,
            ),
            store=clean_store,
        )

        # Run 3 is the first injection (golden=1, profile=2): it fails once,
        # is retried, and the campaign ends exactly like the clean one.
        flaky_store = CampaignStore(tmp_path / "flaky-store")
        engine = CampaignEngine(
            FlakyOMriq.name,
            repro.CampaignConfig(
                workload=FlakyOMriq.name, num_transient=4, seed=_SEED,
                sandbox=SandboxConfig(extra_env={
                    "FLAKY_DIR": str(flaky_dir), "FLAKY_FAIL_RUN": "3",
                }),
                retry=retry,
            ),
            store=flaky_store,
        )
        flaky = engine.run_transient()

        assert engine.metrics.retries == 1
        assert engine.metrics.quarantined == 0
        assert _quarantined(flaky) == []
        assert flaky.tally.counts == clean.tally.counts
        assert (
            (tmp_path / "flaky-store" / "results.csv").read_bytes()
            == (tmp_path / "clean" / "results.csv").read_bytes()
        )

    def test_trace_events_sum_to_final_tally_with_quarantines(self):
        sink = MemorySink()
        retry = RetryPolicy(max_attempts=2, **_FAST_RETRY)
        engine = CampaignEngine(
            ChaosOMriq.name,
            _chaos_config("raise", retry),
            tracer=Tracer(sink=sink),
        )
        result = engine.run_transient()

        events = sink.events
        injections = [e for e in events if e.get("name") == "injection"]
        retries = [e for e in events if e.get("name") == "injection_retry"]
        quarantines = [
            e for e in events if e.get("name") == "injection_quarantined"
        ]
        assert len(injections) == _N
        assert len(retries) == engine.metrics.retries
        assert len(quarantines) == _K
        assert sorted(e["attrs"]["index"] for e in quarantines) == _quarantined(
            result
        )
        for event in quarantines:
            assert event["attrs"]["reason"] == "exception"
            assert "RuntimeError" in event["attrs"]["error"]

        rebuilt = tally_from_trace(events)
        assert rebuilt.counts == result.tally.counts
        assert rebuilt.total == result.tally.total


# -- store round-trips ---------------------------------------------------------


class TestQuarantineResume:
    def test_quarantined_results_persist_and_resume_skips_them(self, tmp_path):
        retry = RetryPolicy(max_attempts=1, **_FAST_RETRY)
        store = CampaignStore(tmp_path / "study")
        first = CampaignEngine(
            ChaosOMriq.name, _chaos_config("raise", retry), store=store
        )
        result = first.run_transient()
        assert first.metrics.quarantined == _K
        csv_after_first = (tmp_path / "study" / "results.csv").read_bytes()
        assert store.completed_injections() == list(range(_N))

        # A fresh engine over the same store must not re-run anything — the
        # quarantined runs included (chaos mode off would change nothing:
        # nothing executes).
        second = CampaignEngine(
            ChaosOMriq.name, _chaos_config("raise", retry), store=store
        )
        resumed = second.run_transient()
        assert second.metrics.injections_loaded == _N
        assert second.metrics.injections_done == 0
        assert second.metrics.quarantined == 0
        assert resumed.tally.counts == result.tally.counts
        assert _quarantined(resumed) == _quarantined(result)
        assert (tmp_path / "study" / "results.csv").read_bytes() == csv_after_first

        # The stored quarantine round-trips its synthesized outcome exactly.
        for index in _quarantined(result):
            stored = store.load_injection(index)
            assert stored.outcome.symptom == HARNESS_FAILURE_SYMPTOM
            assert not stored.record.injected

    def test_interrupt_checkpoints_and_writes_partial_csv(self, tmp_path):
        store = CampaignStore(tmp_path / "study")

        class InterruptAfter(EngineHooks):
            def on_injection(self, index, outcome, completed, total, tally):
                if completed == 3:
                    raise KeyboardInterrupt

        engine = CampaignEngine(
            ChaosOMriq.name,
            _chaos_config("", RetryPolicy(max_attempts=1, **_FAST_RETRY),
                          num=6),
            store=store,
            hooks=InterruptAfter(),
        )
        with pytest.raises(KeyboardInterrupt):
            engine.run_transient()

        assert store.completed_injections() == [0, 1, 2]
        partial = (tmp_path / "study" / "results.csv").read_text().splitlines()
        assert len(partial) == 1 + 3  # header + the checkpointed rows

        resumed_engine = CampaignEngine(
            ChaosOMriq.name,
            _chaos_config("", RetryPolicy(max_attempts=1, **_FAST_RETRY),
                          num=6),
            store=store,
        )
        result = resumed_engine.run_transient()
        assert resumed_engine.metrics.injections_loaded == 3
        assert len(result.results) == 6
        full = (tmp_path / "study" / "results.csv").read_text().splitlines()
        assert len(full) == 1 + 6


# -- the weighted-tally satellite ----------------------------------------------


class TestWeightedTally:
    def test_engine_metrics_tally_matches_weighted_permanent_tally(self):
        engine = CampaignEngine(
            "314.omriq",
            repro.CampaignConfig(workload="314.omriq", seed=_SEED),
        )
        result = engine.run_permanent()
        assert result.tally.total != len(result.results)  # weights are real
        assert engine.metrics.tally.total == pytest.approx(result.tally.total)
        for outcome in repro.Outcome:
            assert engine.metrics.tally.counts[outcome] == pytest.approx(
                result.tally.counts[outcome]
            )


# -- parallel campaigns with failing tasks (multi-process: slow) ---------------


def _run_chaos(mode, retry, store, executor=None, num=_N):
    engine = CampaignEngine(
        ChaosOMriq.name,
        _chaos_config(mode, retry, num=num),
        executor=executor,
        store=store,
    )
    return engine, engine.run_transient()


@pytest.mark.slow
class TestParallelFailures:
    def test_worker_raise_matches_serial_byte_for_byte(self, tmp_path):
        retry = RetryPolicy(max_attempts=2, **_FAST_RETRY)
        _, _ = _run_chaos("raise", retry, CampaignStore(tmp_path / "serial"))
        parallel_engine, parallel = _run_chaos(
            "raise",
            retry,
            CampaignStore(tmp_path / "parallel"),
            executor=ParallelExecutor(max_workers=2, retry=retry),
        )
        assert len(parallel.results) == _N
        assert len(_quarantined(parallel)) == _K
        assert parallel_engine.metrics.quarantined == _K
        assert (
            (tmp_path / "parallel" / "results.csv").read_bytes()
            == (tmp_path / "serial" / "results.csv").read_bytes()
        )

    def test_hard_worker_death_is_quarantined_not_fatal(self, tmp_path):
        # os._exit in a worker breaks the whole pool; the executor must
        # respawn it, re-fly the innocent in-flight chunks uncharged, and
        # quarantine exactly the chunks that die when flown solo — ending
        # byte-identical to the serial campaign where the same tasks raise.
        retry = RetryPolicy(max_attempts=2, **_FAST_RETRY)
        _, _ = _run_chaos("raise", retry, CampaignStore(tmp_path / "serial"))
        engine, result = _run_chaos(
            "exit",
            retry,
            CampaignStore(tmp_path / "death"),
            executor=ParallelExecutor(max_workers=2, retry=retry),
        )
        assert len(result.results) == _N
        assert len(_quarantined(result)) == _K
        assert engine.metrics.quarantined == _K
        for index in _quarantined(result):
            item = result.results[index]
            assert item.outcome.symptom == HARNESS_FAILURE_SYMPTOM
        assert (
            (tmp_path / "death" / "results.csv").read_bytes()
            == (tmp_path / "serial" / "results.csv").read_bytes()
        )

    def test_hung_worker_hits_the_wall_clock_deadline(self, tmp_path):
        # The hang happens in host code (time.sleep), invisible to the
        # in-sim instruction budget: only the parent-side deadline can
        # reclaim the worker.  max_attempts=1 keeps it to one hang.
        retry = RetryPolicy(max_attempts=1, task_timeout=4.0, **_FAST_RETRY)
        serial_retry = RetryPolicy(max_attempts=1, **_FAST_RETRY)
        _, _ = _run_chaos(
            "raise", serial_retry, CampaignStore(tmp_path / "serial"),
            num=_N_SMALL,
        )
        sink = MemorySink()
        engine = CampaignEngine(
            ChaosOMriq.name,
            _chaos_config("hang", retry, num=_N_SMALL),
            executor=ParallelExecutor(max_workers=2, retry=retry),
            store=CampaignStore(tmp_path / "hang"),
            tracer=Tracer(sink=sink),
        )
        result = engine.run_transient()
        assert len(result.results) == _N_SMALL
        assert len(_quarantined(result)) == _K_SMALL
        assert engine.metrics.quarantined == _K_SMALL
        quarantines = [
            e for e in sink.events if e.get("name") == "injection_quarantined"
        ]
        assert [e["attrs"]["reason"] for e in quarantines] == ["timeout"]
        assert (
            (tmp_path / "hang" / "results.csv").read_bytes()
            == (tmp_path / "serial" / "results.csv").read_bytes()
        )

    def test_parallel_trace_events_sum_to_tally_with_quarantines(self, tmp_path):
        retry = RetryPolicy(max_attempts=2, **_FAST_RETRY)
        sink = MemorySink()
        engine = CampaignEngine(
            ChaosOMriq.name,
            _chaos_config("raise", retry),
            executor=ParallelExecutor(max_workers=2, retry=retry),
            tracer=Tracer(sink=sink),
        )
        result = engine.run_transient()
        rebuilt = tally_from_trace(sink.events)
        assert rebuilt.counts == result.tally.counts
        injections = [e for e in sink.events if e.get("name") == "injection"]
        assert len(injections) == _N
