"""Campaign-store tests: the on-disk study layout."""

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.outcomes import Outcome
from repro.core.store import CampaignStore
from repro.errors import ReproError
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def campaign_result():
    campaign = Campaign(get_workload("314.omriq"),
                        CampaignConfig(num_transient=5, seed=3))
    result = campaign.run_transient()
    return campaign, result


class TestRoundTrips:
    def test_golden_roundtrip(self, tmp_path, campaign_result):
        campaign, _ = campaign_result
        store = CampaignStore(tmp_path)
        store.save_golden(campaign.golden)
        loaded = store.load_golden()
        assert loaded.stdout == campaign.golden.stdout
        assert loaded.files == campaign.golden.files

    def test_profile_roundtrip(self, tmp_path, campaign_result):
        campaign, _ = campaign_result
        store = CampaignStore(tmp_path)
        store.save_profile(campaign.profile)
        loaded = store.load_profile()
        assert loaded.total_count() == campaign.profile.total_count()
        assert loaded.num_dynamic_kernels == campaign.profile.num_dynamic_kernels

    def test_injection_roundtrip(self, tmp_path, campaign_result):
        _, result = campaign_result
        store = CampaignStore(tmp_path)
        store.save_injection(0, result.results[0])
        loaded = store.load_injection(0)
        assert loaded.params == result.results[0].params
        assert loaded.outcome.outcome == result.results[0].outcome.outcome
        assert loaded.outcome.symptom == result.results[0].outcome.symptom
        assert loaded.wall_time == pytest.approx(result.results[0].wall_time)
        assert loaded.instructions == result.results[0].instructions

    def test_record_roundtrip_is_lossless(self, tmp_path, campaign_result):
        """Every InjectionRecord field survives the disk round trip (the old
        store reconstructed records from a string prefix check)."""
        _, result = campaign_result
        store = CampaignStore(tmp_path)
        for index, item in enumerate(result.results):
            store.save_injection(index, item)
            assert store.load_injection(index).record == item.record

    def test_legacy_describe_only_record_still_loads(self, tmp_path, campaign_result):
        _, result = campaign_result
        store = CampaignStore(tmp_path)
        store.save_injection(0, result.results[0])
        run_dir = tmp_path / "injections" / "run_00000"
        (run_dir / "record.txt").write_text(
            result.results[0].record.describe() + "\n"
        )
        loaded = store.load_injection(0)
        assert loaded.record.injected == result.results[0].record.injected

    def test_full_campaign_roundtrip(self, tmp_path, campaign_result):
        campaign, result = campaign_result
        store = CampaignStore(tmp_path / "study")
        store.save_campaign(campaign.golden, campaign.profile, result)
        assert store.completed_injections() == list(range(5))
        tally = store.load_tally()
        for outcome in Outcome:
            assert tally.fraction(outcome) == result.tally.fraction(outcome)

    def test_results_csv(self, tmp_path, campaign_result):
        campaign, result = campaign_result
        store = CampaignStore(tmp_path)
        store.save_results_csv(result)
        csv_text = (tmp_path / "results.csv").read_text()
        assert csv_text.count("\n") == 6  # header + 5 rows
        assert "computeQ" in csv_text or "computePhiMag" in csv_text


class TestResume:
    def _make_campaign(self):
        return Campaign(get_workload("314.omriq"),
                        CampaignConfig(num_transient=4, seed=21))

    def test_fresh_run_populates_store(self, tmp_path):
        from repro.core.store import run_resumable_campaign

        store = CampaignStore(tmp_path)
        result = run_resumable_campaign(self._make_campaign(), store)
        assert len(result.results) == 4
        assert store.completed_injections() == [0, 1, 2, 3]

    def test_resume_skips_completed_and_matches(self, tmp_path):
        from repro.core.store import run_resumable_campaign

        store = CampaignStore(tmp_path)
        first = run_resumable_campaign(self._make_campaign(), store)

        # Simulate an interruption: drop the last two runs from disk.
        import shutil

        for index in (2, 3):
            shutil.rmtree(tmp_path / "injections" / f"run_{index:05d}")
        assert store.completed_injections() == [0, 1]

        second = run_resumable_campaign(self._make_campaign(), store)
        assert store.completed_injections() == [0, 1, 2, 3]
        assert [r.outcome.outcome for r in second.results] == [
            r.outcome.outcome for r in first.results
        ]

    def test_mismatched_store_rejected(self, tmp_path):
        from repro.core.store import run_resumable_campaign

        store = CampaignStore(tmp_path)
        run_resumable_campaign(self._make_campaign(), store)
        other = Campaign(get_workload("314.omriq"),
                         CampaignConfig(num_transient=4, seed=999))
        with pytest.raises(ReproError, match="different"):
            run_resumable_campaign(other, store)


class TestErrors:
    def test_missing_golden(self, tmp_path):
        with pytest.raises(ReproError, match="no golden"):
            CampaignStore(tmp_path).load_golden()

    def test_missing_profile(self, tmp_path):
        with pytest.raises(ReproError, match="no profile"):
            CampaignStore(tmp_path).load_profile()

    def test_missing_injection(self, tmp_path):
        with pytest.raises(ReproError, match="not stored"):
            CampaignStore(tmp_path).load_injection(7)

    def test_empty_store_has_no_completed(self, tmp_path):
        assert CampaignStore(tmp_path).completed_injections() == []

    def test_stray_entries_skipped_with_warning(self, tmp_path, campaign_result):
        """A stray file or oddly-named directory under ``injections/`` used
        to crash ``completed_injections`` with ValueError."""
        _, result = campaign_result
        store = CampaignStore(tmp_path)
        store.save_injection(0, result.results[0])
        store.save_injection(2, result.results[1])
        injections = tmp_path / "injections"
        (injections / "notes.txt").write_text("scratch")
        (injections / "run_latest").mkdir()
        (injections / "backup").mkdir()
        with pytest.warns(UserWarning, match="unrecognised"):
            assert store.completed_injections() == [0, 2]

    def test_incomplete_run_dir_not_listed(self, tmp_path, campaign_result):
        _, result = campaign_result
        store = CampaignStore(tmp_path)
        store.save_injection(0, result.results[0])
        (tmp_path / "injections" / "run_00001").mkdir()  # no outcome.txt yet
        assert store.completed_injections() == [0]
