"""Thread-targeted injector tests (paper §III-B future direction)."""

import numpy as np
import pytest

from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup
from repro.core.params import TransientParams
from repro.core.thread_target import ThreadTarget, ThreadTargetedInjectorTool
from repro.errors import ParamError
from repro.runner.app import AppContext, Application
from repro.runner.sandbox import run_app

# Each thread accumulates in a loop; per-thread G_GP stream is long enough
# to address individual iterations.
_KERNEL = """
.kernel percell
.params 1
    S2R R1, SR_TID.X ;
    S2R R2, SR_CTAID.X ;
    S2R R3, SR_NTID.X ;
    IMAD R4, R2, R3, R1 ;
    MOV R5, RZ ;
    MOV R6, RZ ;
    PBK DONE ;
LOOP:
    ISETP.GE P0, R6, 4 ;
@P0 BRK ;
    IADD R5, R5, 10 ;
    IADD R6, R6, 1 ;
    BRA LOOP ;
DONE:
    MOV R7, c[0x0][0x0] ;
    ISCADD R8, R4, R7, 2 ;
    STG.32 [R8], R5 ;
    EXIT ;
"""


class PerCellApp(Application):
    name = "percell"

    def run(self, ctx: AppContext) -> None:
        module = ctx.cuda.load_module(_KERNEL)
        func = ctx.cuda.get_function(module, "percell")
        out = ctx.cuda.alloc(96, np.uint32)
        ctx.cuda.launch(func, 2, 48, out)  # 2 blocks, 1.5 warps each
        ctx.write_file("out", out.to_host().tobytes())


def _params(instruction_count: int) -> TransientParams:
    return TransientParams(
        group=InstructionGroup.G_GP,
        model=BitFlipModel.FLIP_SINGLE_BIT,
        kernel_name="percell",
        kernel_count=0,
        instruction_count=instruction_count,
        dest_reg_selector=0.0,
        bit_pattern_value=2.5 / 32,  # flip bit 2 (value 4)
    )


def _run(target: ThreadTarget, instruction_count: int):
    injector = ThreadTargetedInjectorTool(_params(instruction_count), target)
    artifacts = run_app(PerCellApp(), preload=[injector])
    return injector, np.frombuffer(artifacts.files["out"], np.uint32)


def _golden():
    return np.frombuffer(run_app(PerCellApp()).files["out"], np.uint32)


class TestThreadTargeting:
    @pytest.mark.parametrize("ctaid,tid,flat", [
        ((0, 0, 0), (0, 0, 0), 0),
        ((0, 0, 0), (37, 0, 0), 37),  # second warp of block 0
        ((1, 0, 0), (5, 0, 0), 53),
        ((1, 0, 0), (47, 0, 0), 95),  # last thread (partial warp)
    ])
    def test_exactly_the_victim_thread_corrupted(self, ctaid, tid, flat):
        target = ThreadTarget(ctaid=ctaid, tid=tid)
        # The victim's 7th per-thread GP write is the 2nd loop IADD into R5.
        injector, out = _run(target, 6)
        golden = _golden()
        assert injector.record.injected
        assert injector.record.thread_idx == tid
        diff = np.nonzero(out != golden)[0]
        assert list(diff) == [flat]

    def test_per_thread_count_semantics(self):
        """instruction_count indexes the victim's own stream: its 5th GP
        write is the first loop IADD into R5 (after S2R/S2R/S2R? no —
        S2R,S2R,S2R,IMAD,MOV,MOV are 0..5, so index 6 is the first IADD)."""
        target = ThreadTarget(ctaid=(0, 0, 0), tid=(3, 0, 0))
        injector, _ = _run(target, 6)
        assert injector.record.opcode == "IADD"
        assert injector.record.dest_index == 5

    def test_unreachable_thread_never_injects(self):
        target = ThreadTarget(ctaid=(5, 0, 0), tid=(0, 0, 0))  # no block 5
        injector, out = _run(target, 0)
        assert not injector.record.injected
        assert (out == _golden()).all()

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ParamError):
            ThreadTarget(ctaid=(0, 0, 0), tid=(-1, 0, 0))

    def test_padding_lane_not_mistaken_for_thread_zero(self):
        """Block size 48 pads the second warp's lanes 16..31 with tid 0;
        targeting thread (0,0,0) must hit warp 0 lane 0, not padding."""
        target = ThreadTarget(ctaid=(0, 0, 0), tid=(0, 0, 0))
        injector, out = _run(target, 6)
        golden = _golden()
        assert injector.record.injected
        assert list(np.nonzero(out != golden)[0]) == [0]
