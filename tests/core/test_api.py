"""Tests for the stable :mod:`repro.api` facade.

The core property: the facade is a thin skin over the engine, so api-driven
campaigns are byte-identical (results.csv) to the legacy entry points, and
api site selection reproduces the engine's RNG stream exactly.
"""

import pytest

import repro
from repro import api
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.params import PermanentParams
from repro.core.store import CampaignStore, run_resumable_campaign
from repro.errors import ReproError
from repro.workloads import get_workload

WORKLOAD = "360.ilbdc"


class TestProfile:
    def test_profile_stamps_workload(self):
        profile = api.profile(WORKLOAD)
        assert profile.workload == WORKLOAD
        assert profile.total_count() > 0

    def test_workload_stamp_survives_text_roundtrip(self):
        from repro.core.profile_data import ProgramProfile

        profile = api.profile(WORKLOAD)
        loaded = ProgramProfile.from_text(profile.to_text())
        assert loaded.workload == WORKLOAD
        assert loaded == profile

    def test_accepts_application_objects(self):
        profile = api.profile(get_workload(WORKLOAD))
        assert profile.workload == WORKLOAD


class TestSelectSites:
    def test_matches_engine_selection_exactly(self):
        config = CampaignConfig(num_transient=6, seed=11)
        campaign = Campaign(get_workload(WORKLOAD), config)
        engine_sites = campaign.select_sites()

        profile = api.profile(WORKLOAD)
        api_sites = api.select_sites(profile, count=6, seed=11)
        assert api_sites == engine_sites

    def test_deterministic_for_seed(self):
        profile = api.profile(WORKLOAD)
        assert api.select_sites(profile, count=3, seed=5) == api.select_sites(
            profile, count=3, seed=5
        )
        assert api.select_sites(profile, count=3, seed=5) != api.select_sites(
            profile, count=3, seed=6
        )


class TestInject:
    def test_transient_injection_classifies(self):
        profile = api.profile(WORKLOAD)
        [site] = api.select_sites(profile, count=1, seed=3)
        result = api.inject(WORKLOAD, site)
        assert result.params == site
        assert result.outcome.outcome.value in ("Masked", "SDC", "DUE")
        assert result.artifacts.instructions_executed > 0

    def test_permanent_params_accepted(self):
        result = api.inject(WORKLOAD, PermanentParams(
            sm_id=0, lane_id=0, bit_mask=1, opcode_id=0,
        ))
        assert result.outcome is not None

    def test_unsupported_params_rejected(self):
        with pytest.raises(ReproError):
            api.inject(WORKLOAD, object())


class TestRunCampaign:
    def test_requires_workload_in_config(self):
        with pytest.raises(ReproError, match="workload"):
            api.run_campaign(CampaignConfig(num_transient=1))

    def test_parity_with_legacy_campaign(self, tmp_path):
        config = CampaignConfig(workload=WORKLOAD, num_transient=4, seed=2)

        api_store = CampaignStore(tmp_path / "api")
        api_result = api.run_campaign(config, store=api_store)

        legacy = Campaign(get_workload(WORKLOAD), config)
        with pytest.warns(DeprecationWarning):
            legacy_result = legacy.run_transient()
        legacy.engine.store = CampaignStore(tmp_path / "legacy")
        legacy.engine.store.save_campaign(
            legacy.engine.golden, legacy.engine.profile, legacy_result
        )

        assert api_result.tally.counts == legacy_result.tally.counts
        api_csv = (tmp_path / "api" / "results.csv").read_bytes()
        legacy_csv = (tmp_path / "legacy" / "results.csv").read_bytes()
        assert api_csv == legacy_csv

    def test_permanent_kind(self):
        config = CampaignConfig(workload=WORKLOAD, seed=2)
        result = api.run_campaign(config, kind="permanent")
        assert len(result.results) > 0
        assert result.tally.total == pytest.approx(1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="kind"):
            api.run_campaign(
                CampaignConfig(workload=WORKLOAD), kind="cosmic"
            )


class TestDeprecations:
    def test_legacy_run_transient_warns(self):
        campaign = Campaign(
            get_workload(WORKLOAD), CampaignConfig(num_transient=1, seed=1)
        )
        with pytest.warns(DeprecationWarning, match="run_campaign"):
            campaign.run_transient()

    def test_run_resumable_campaign_warns(self, tmp_path):
        campaign = Campaign(
            get_workload(WORKLOAD), CampaignConfig(num_transient=1, seed=1)
        )
        with pytest.warns(DeprecationWarning, match="run_campaign"):
            run_resumable_campaign(campaign, CampaignStore(tmp_path))

    @pytest.mark.slow
    def test_run_transient_parallel_warns(self):
        from repro.core.parallel import run_transient_parallel

        with pytest.warns(DeprecationWarning, match="run_campaign"):
            run_transient_parallel(
                WORKLOAD,
                CampaignConfig(num_transient=1, seed=1),
                max_workers=1,
            )


class TestTopLevelExports:
    def test_facade_is_importable_from_package_root(self):
        assert repro.profile is api.profile
        assert repro.select_sites is api.select_sites
        assert repro.inject is api.inject
        assert repro.run_campaign is api.run_campaign
        for name in ("profile", "select_sites", "inject", "run_campaign"):
            assert name in repro.__all__


class TestCampaignKinds:
    def test_enum_and_string_kinds_are_equivalent(self):
        config = CampaignConfig(workload=WORKLOAD, num_transient=2, seed=7)
        by_enum = api.run_campaign(config, kind=repro.CampaignKind.TRANSIENT)
        by_string = api.run_campaign(config, kind="transient")
        assert by_enum.tally.counts == by_string.tally.counts
        assert [r.outcome for r in by_enum.results] == [
            r.outcome for r in by_string.results
        ]

    def test_coerce_names_the_valid_kinds(self):
        with pytest.raises(ReproError, match="expected one of"):
            repro.CampaignKind.coerce("cosmic")

    def test_intermittent_has_no_campaign_entry_point(self):
        with pytest.raises(ReproError, match="inject"):
            api.run_campaign(
                CampaignConfig(workload=WORKLOAD),
                kind=repro.CampaignKind.INTERMITTENT,
            )


class TestLegacyOverrideKwargs:
    def test_each_legacy_kwarg_warns(self):
        from repro.core.resilience import RetryPolicy

        for kwarg, value in [
            ("retry", RetryPolicy(max_attempts=2)),
            ("fast_forward", False),
            ("tail_fast_forward", False),
        ]:
            config = CampaignConfig(workload=WORKLOAD, num_transient=1, seed=1)
            with pytest.warns(DeprecationWarning, match="with_overrides"):
                api.run_campaign(config, **{kwarg: value})

    def test_legacy_kwargs_match_with_overrides(self, tmp_path):
        config = CampaignConfig(workload=WORKLOAD, num_transient=3, seed=5)

        legacy_store = CampaignStore(tmp_path / "legacy")
        with pytest.warns(DeprecationWarning, match="with_overrides"):
            api.run_campaign(config, store=legacy_store, fast_forward=False)

        modern_store = CampaignStore(tmp_path / "modern")
        api.run_campaign(
            config.with_overrides(fast_forward=False), store=modern_store
        )

        assert (tmp_path / "legacy" / "results.csv").read_bytes() == (
            tmp_path / "modern" / "results.csv"
        ).read_bytes()


class TestUnstampedProfiles:
    def test_select_sites_rejects_unstamped_profile(self):
        from dataclasses import replace

        from repro.errors import ParamError

        profile = api.profile(WORKLOAD)
        unstamped = replace(profile, workload="")
        with pytest.raises(ParamError, match="workload stamp"):
            api.select_sites(unstamped, count=2, seed=1)
