"""Transient-injector tests: surgical precision of the injection.

The central invariants: exactly one destination register of exactly one
dynamic instruction of one thread is corrupted, with the Table II mask, in
the targeted dynamic kernel instance — and nothing else changes.
"""

import numpy as np
import pytest

from repro.core.bitflip import BitFlipModel
from repro.core.dictionary import DictionaryEntry, FaultDictionary
from repro.core.groups import InstructionGroup
from repro.core.injector import TransientInjectorTool
from repro.core.params import TransientParams
from repro.runner.app import AppContext, Application
from repro.runner.sandbox import run_app

G = InstructionGroup
M = BitFlipModel

# One warp; GP-writing stream per instance (32 threads each):
#   S2R, MOV, ISCADD, IADD, IMUL  -> 160 G_GP instructions per launch.
_KERNEL = """
.kernel chain
.params 1
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    ISCADD R3, R1, R2, 2 ;
    IADD R4, R1, 1 ;
    IMUL R5, R4, 2 ;
    STG.32 [R3], R5 ;
    EXIT ;
"""

_PRED_KERNEL = """
.kernel predk
.params 1
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    ISCADD R3, R1, R2, 2 ;
    ISETP.LT P0, R1, 16 ;
    MOV R4, RZ ;
@P0 MOV R4, 1 ;
    STG.32 [R3], R4 ;
    EXIT ;
"""

# An FP64 destination writes an even-aligned register *pair* (R4:R5) —
# the one in-ISA case where len(dest_regs) > 1, which exercises the
# multi-register wraparound in `_inject`.
_PAIR_KERNEL = """
.kernel dchain
.params 1
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    ISCADD R3, R1, R2, 2 ;
    MOV R4, R1 ;
    MOV R5, RZ ;
    DADD R4, R4, R4 ;
    STG.32 [R3], R4 ;
    EXIT ;
"""


class ChainApp(Application):
    name = "chain_app"

    def __init__(self, text=_KERNEL, kernel="chain", launches=1):
        self.text = text
        self.kernel = kernel
        self.launches = launches

    def run(self, ctx: AppContext) -> None:
        module = ctx.cuda.load_module(self.text)
        func = ctx.cuda.get_function(module, self.kernel)
        out = ctx.cuda.alloc(32, np.uint32)
        for _ in range(self.launches):
            ctx.cuda.launch(func, 1, 32, out)
        ctx.write_file("out.bin", out.to_host().tobytes())


def _params(**overrides):
    defaults = dict(
        group=G.G_GP,
        model=M.FLIP_SINGLE_BIT,
        kernel_name="chain",
        kernel_count=0,
        instruction_count=96,  # first thread of the IADD
        dest_reg_selector=0.0,
        bit_pattern_value=0.0,  # mask = 1 << 0
    )
    defaults.update(overrides)
    return TransientParams(**defaults)


def _inject(app, params, dictionary=None, num_regs=1):
    injector = TransientInjectorTool(params, dictionary=dictionary,
                                     num_regs_to_corrupt=num_regs)
    artifacts = run_app(app, preload=[injector])
    out = np.frombuffer(artifacts.files["out.bin"], dtype=np.uint32)
    return injector, out


def _golden(app):
    artifacts = run_app(app)
    return np.frombuffer(artifacts.files["out.bin"], dtype=np.uint32)


class TestPrecision:
    def test_exact_lane_and_instruction(self):
        # instruction_count 96 + k => IADD destination of lane k.
        for lane in (0, 7, 31):
            app = ChainApp()
            injector, out = _inject(app, _params(instruction_count=96 + lane))
            golden = _golden(app)
            expected = golden.copy()
            expected[lane] = (((lane + 1) ^ 1) * 2) & 0xFFFFFFFF
            assert (out == expected).all()
            assert injector.record.injected
            assert injector.record.opcode == "IADD"
            assert injector.record.lane == lane

    def test_only_one_thread_affected(self):
        app = ChainApp()
        _, out = _inject(app, _params(instruction_count=96 + 5))
        golden = _golden(app)
        assert (out != golden).sum() == 1

    def test_record_values_consistent_with_mask(self):
        app = ChainApp()
        injector, _ = _inject(app, _params(instruction_count=96 + 3,
                                           bit_pattern_value=8.2 / 32))
        record = injector.record
        assert record.mask == 1 << 8
        assert record.value_after == record.value_before ^ record.mask
        assert record.value_before == 4  # tid 3 + 1
        assert record.dest_kind == "reg"
        assert record.dest_index == 4  # the IADD writes R4

    def test_random_value_model(self):
        app = ChainApp()
        injector, _ = _inject(
            app, _params(model=M.RANDOM_VALUE, bit_pattern_value=0.5)
        )
        assert injector.record.mask == int(0xFFFFFFFF * 0.5)

    def test_zero_value_model(self):
        app = ChainApp()
        injector, out = _inject(
            app,
            _params(model=M.ZERO_VALUE, instruction_count=96 + 2),
        )
        assert injector.record.value_after == 0
        assert out[2] == 0  # (0) * 2

    def test_earlier_group_instruction_targets(self):
        # instruction_count 0 => the very first S2R, lane 0, dest R1.
        app = ChainApp()
        injector, _ = _inject(app, _params(instruction_count=0))
        assert injector.record.opcode == "S2R"
        assert injector.record.dest_index == 1


class TestKernelInstanceTargeting:
    def test_second_instance_targeted(self):
        # With two launches, kernel_count=1 corrupts only the second launch;
        # since the second launch overwrites the buffer, the effect shows.
        app = ChainApp(launches=2)
        injector, out = _inject(
            app, _params(kernel_count=1, instruction_count=96 + 4)
        )
        golden = _golden(app)
        assert injector.record.injected
        assert out[4] != golden[4]

    def test_first_instance_effect_overwritten(self):
        # Corrupting the first launch is masked: the second launch rewrites
        # the output. This is genuine architectural masking.
        app = ChainApp(launches=2)
        injector, out = _inject(
            app, _params(kernel_count=0, instruction_count=96 + 4)
        )
        golden = _golden(app)
        assert injector.record.injected
        assert (out == golden).all()

    def test_unreached_instance_never_injects(self):
        app = ChainApp(launches=1)
        injector, out = _inject(app, _params(kernel_count=5))
        assert not injector.record.injected
        assert (out == _golden(app)).all()

    def test_instruction_count_past_end_never_injects(self):
        app = ChainApp()
        injector, out = _inject(app, _params(instruction_count=10_000))
        assert not injector.record.injected
        assert (out == _golden(app)).all()

    def test_wrong_kernel_name_never_injects(self):
        app = ChainApp()
        injector, _ = _inject(app, _params(kernel_name="other_kernel"))
        assert not injector.record.injected

    def test_injects_at_most_once(self):
        app = ChainApp(launches=3)
        injector, _ = _inject(app, _params(kernel_count=0))
        assert injector.record.injected
        # A second run of the same params object must not re-arm silently:
        # the record already says injected and stays that way.
        assert injector.record.num_regs_corrupted == 1


class TestPredicateInjection:
    def test_pr_group_flips_predicate(self):
        # predk stream for G_PR: only ISETP (32 threads). Lane 3's P0 flips
        # from True to False, so its guarded MOV is skipped -> out[3] = 0.
        app = ChainApp(text=_PRED_KERNEL, kernel="predk")
        params = _params(
            group=G.G_PR, kernel_name="predk", instruction_count=3
        )
        injector, out = _inject(app, params)
        golden = _golden(app)
        assert injector.record.injected
        assert injector.record.dest_kind == "pred"
        assert out[3] == 0 and golden[3] == 1
        mismatches = (out != golden).sum()
        assert mismatches == 1


class TestExtensions:
    def test_multi_register_corruption(self):
        app = ChainApp()
        injector, _ = _inject(
            app, _params(instruction_count=96 + 1), num_regs=3
        )
        # The IADD has a single destination; corruption count is capped.
        assert injector.record.num_regs_corrupted == 1

    def test_dictionary_overrides_model(self):
        dictionary = FaultDictionary(seed=1)
        dictionary.add(
            "IADD", DictionaryEntry(M.ZERO_VALUE, 1.0)
        )
        app = ChainApp()
        injector, out = _inject(
            app, _params(instruction_count=96 + 6), dictionary=dictionary
        )
        assert injector.record.value_after == 0
        assert out[6] == 0

    def test_invalid_num_regs(self):
        with pytest.raises(ValueError):
            TransientInjectorTool(_params(), num_regs_to_corrupt=0)


class TestVisitOffsetPin:
    """Pin the `_visit` offset arithmetic across the hot-path rewrite.

    The mapping ``instruction_count = slot * 32 + lane`` (slot = position
    in the kernel's G_GP stream, one warp of 32) must hit exactly that
    opcode and lane.  If a micro-optimization of the counting loop skews
    the offset by even one instruction, this enumeration catches it.
    """

    _STREAM = ["S2R", "MOV", "ISCADD", "IADD", "IMUL"]

    def test_every_slot_and_edge_lane(self):
        for slot, opcode in enumerate(self._STREAM):
            for lane in (0, 13, 31):
                app = ChainApp()
                injector, _ = _inject(
                    app, _params(instruction_count=slot * 32 + lane)
                )
                record = injector.record
                assert record.injected
                assert (record.opcode, record.lane) == (opcode, lane), (
                    f"count {slot * 32 + lane} must target {opcode} "
                    f"lane {lane}, got {record.opcode} lane {record.lane}"
                )

    def test_boundary_between_instructions(self):
        # Last lane of one instruction vs first lane of the next — the
        # exact off-by-one a `counter + executed > target` rewrite risks.
        app = ChainApp()
        injector, _ = _inject(app, _params(instruction_count=31))
        assert (injector.record.opcode, injector.record.lane) == ("S2R", 31)
        app = ChainApp()
        injector, _ = _inject(app, _params(instruction_count=32))
        assert (injector.record.opcode, injector.record.lane) == ("MOV", 0)


class TestMultiRegisterWraparound:
    """`_inject` register-pair handling: the FP64 DADD writes R4:R5."""

    def _pair_params(self, **overrides):
        return _params(
            kernel_name="dchain", instruction_count=160, **overrides
        )

    def _pair_app(self):
        return ChainApp(text=_PAIR_KERNEL, kernel="dchain")

    def test_corruption_capped_at_pair_width(self):
        # num_regs_to_corrupt > len(dest_regs): wraps but corrupts each
        # destination at most once, so the pair caps the count at 2.
        injector, _ = _inject(
            self._pair_app(), self._pair_params(), num_regs=5
        )
        record = injector.record
        assert record.opcode == "DADD"
        assert record.num_regs_corrupted == 2

    def test_selector_walks_into_pair_then_wraps(self):
        # selector 0.6 over a 2-wide pair picks index 1 (R5) first; a
        # second corruption wraps back to index 0 (R4).
        injector, _ = _inject(
            self._pair_app(),
            self._pair_params(dest_reg_selector=0.6),
            num_regs=2,
        )
        record = injector.record
        assert record.dest_index == 5  # the record names the first target
        assert record.num_regs_corrupted == 2

    def test_selector_at_one_wraps_instead_of_indexing_out(self):
        # dest_reg_selector == 1.0 is rejected by params validation, but
        # `_inject` itself must stay total: int(1.0 * 2) == 2 lands past
        # the pair and the modulo wraps it to R4 instead of raising.
        params = self._pair_params()
        object.__setattr__(params, "dest_reg_selector", 1.0)
        injector, _ = _inject(self._pair_app(), params)
        record = injector.record
        assert record.injected
        assert record.dest_index == 4
        assert record.num_regs_corrupted == 1


class TestSelectiveInstrumentation:
    def test_untargeted_kernels_not_instrumented(self):
        """The NVBitFI overhead claim: only the target dynamic kernel runs
        instrumented code."""
        calls = []

        class SpyInjector(TransientInjectorTool):
            def _visit(self, site):
                calls.append(site.instr.pc)
                super()._visit(site)

        two_kernels = _KERNEL + "\n" + _PRED_KERNEL.replace("predk", "other")

        class TwoKernelApp(ChainApp):
            def run(self, ctx):
                module = ctx.cuda.load_module(two_kernels)
                chain = ctx.cuda.get_function(module, "chain")
                other = ctx.cuda.get_function(module, "other")
                out = ctx.cuda.alloc(32, np.uint32)
                ctx.cuda.launch(other, 1, 32, out)
                ctx.cuda.launch(chain, 1, 32, out)
                ctx.cuda.launch(other, 1, 32, out)
                ctx.write_file("out.bin", out.to_host().tobytes())

        injector = SpyInjector(_params(instruction_count=0))
        run_app(TwoKernelApp(), preload=[injector])
        # Hooks fired only during the single 'chain' launch: 5 GP
        # instructions, one call per warp-instruction = 5 calls.
        assert len(calls) == 5


class TestInjectionRecordParsing:
    def _record(self):
        from repro.core.injector import InjectionRecord

        return InjectionRecord(
            injected=True, kernel_name="k", pc=7, opcode="FFMA", sm_id=2,
            ctaid=(1, 0, 0), thread_idx=(3, 0, 0), lane=3, dest_kind="reg",
            dest_index=10, value_before=1, value_after=5, mask=4,
            num_regs_corrupted=1,
        )

    def test_roundtrip(self):
        from repro.core.injector import InjectionRecord

        record = self._record()
        assert InjectionRecord.from_text(record.to_text()) == record

    def test_malformed_int_blames_its_line(self):
        from repro.core.injector import InjectionRecord
        from repro.errors import ReproError

        text = self._record().to_text().replace("pc=7", "pc=seven")
        lineno = next(
            i for i, line in enumerate(text.splitlines(), start=1)
            if line.startswith("pc=")
        )
        with pytest.raises(ReproError, match=f"line {lineno}.*pc='seven'"):
            InjectionRecord.from_text(text)

    def test_malformed_dim3_blames_its_line(self):
        from repro.core.injector import InjectionRecord
        from repro.errors import ReproError

        text = self._record().to_text().replace("ctaid=1,0,0", "ctaid=1,0")
        with pytest.raises(ReproError, match="ctaid='1,0'.*expected 3"):
            InjectionRecord.from_text(text)

    @pytest.mark.parametrize("text_value", ["true", "1", "TRUE", "True"])
    def test_lowercase_and_numeric_true_spellings_parse(self, text_value):
        # Drifted writers (shell wrappers, older logs) emit lowercase or
        # numeric booleans; these used to silently parse as False.
        from repro.core.injector import InjectionRecord

        text = self._record().to_text().replace(
            "injected=True", f"injected={text_value}"
        )
        assert InjectionRecord.from_text(text).injected

    @pytest.mark.parametrize("text_value", ["false", "0", "False"])
    def test_false_spellings_parse(self, text_value):
        from repro.core.injector import InjectionRecord

        text = self._record().to_text().replace(
            "injected=True", f"injected={text_value}"
        )
        assert not InjectionRecord.from_text(text).injected

    def test_junk_boolean_blames_its_line(self):
        from repro.core.injector import InjectionRecord
        from repro.errors import ReproError

        text = self._record().to_text().replace(
            "injected=True", "injected=yes"
        )
        lineno = next(
            i for i, line in enumerate(text.splitlines(), start=1)
            if line.startswith("injected=")
        )
        with pytest.raises(ReproError,
                           match=f"line {lineno}.*injected='yes'"):
            InjectionRecord.from_text(text)

    def test_legacy_describe_only_text_still_parses(self):
        from repro.core.injector import InjectionRecord

        record = InjectionRecord.from_text("injected FFMA pc=4 ...")
        assert record.injected
        assert not InjectionRecord.from_text("no injection performed").injected
