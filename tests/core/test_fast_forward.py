"""Campaign-level golden-replay fast-forward: byte-parity and counters.

The contract (ISSUE: golden-replay + tail fast-forward): ``results.csv``
is byte-identical with fast-forward — pre-target replay *and* tail
replay-after-re-convergence — on or off, for serial, parallel, resumed,
and campaigns containing quarantined failures, because replayed launches
restore the exact recorded write deltas and counter deltas.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.campaign import CampaignConfig
from repro.core.engine import CampaignEngine, ParallelExecutor
from repro.core.resilience import RetryPolicy
from repro.core.store import CampaignStore
from repro.obs import MemorySink, MetricsRegistry, Tracer, spans
from repro.workloads.omriq import OMriq
from repro.workloads.registry import WORKLOADS

_WORKLOAD = "303.ostencil"  # 21 launches: a real fast-forward window
_N = 6
_SEED = 3


class FFChaosOMriq(OMriq):
    """Raises out of the sandbox whenever the fault corrupted the output
    (a deterministic function of the campaign seed), producing quarantined
    results identical under every executor and fast-forward setting."""

    name = "998.ffchaos"
    description = "OMriq variant used by fast-forward quarantine parity"

    def run(self, ctx) -> None:
        super().run(ctx)
        data = np.frombuffer(ctx.files[self.output_file], dtype=np.float32)
        finite = data[np.isfinite(data)]
        if finite.size != data.size or bool((np.abs(finite) > 1e6).any()):
            raise RuntimeError("chaos: corrupted device output")


@pytest.fixture(autouse=True, scope="module")
def _register_chaos():
    WORKLOADS[FFChaosOMriq.name] = FFChaosOMriq
    yield
    WORKLOADS.pop(FFChaosOMriq.name, None)


def _results_csv(tmp_path, label, fast_forward, executor=None, **overrides):
    store_dir = tmp_path / f"{label}-{'ff' if fast_forward else 'full'}"
    config = CampaignConfig(
        workload=overrides.pop("workload", _WORKLOAD),
        num_transient=overrides.pop("num_transient", _N),
        seed=overrides.pop("seed", _SEED),
        fast_forward=fast_forward,
        **overrides,
    )
    repro.run_campaign(config, executor=executor, store=CampaignStore(store_dir))
    return (store_dir / "results.csv").read_bytes()


class TestResultsByteParity:
    def test_serial(self, tmp_path):
        assert _results_csv(tmp_path, "serial", True) == _results_csv(
            tmp_path, "serial", False
        )

    @pytest.mark.slow
    def test_parallel(self, tmp_path):
        executor = ParallelExecutor(max_workers=2)
        parallel_ff = _results_csv(tmp_path, "par", True, executor=executor)
        serial_full = _results_csv(tmp_path, "ser", False)
        assert parallel_ff == serial_full

    def test_resumed(self, tmp_path):
        for fast_forward, label in ((True, "ff"), (False, "full")):
            store = CampaignStore(tmp_path / f"resumed-{label}")
            config = CampaignConfig(
                workload=_WORKLOAD, num_transient=_N, seed=_SEED,
                fast_forward=fast_forward,
            )
            # First campaign: a prefix of the plan, then "interrupted".
            first = CampaignEngine(_WORKLOAD, config, store=store)
            first.run_transient(first.select_sites()[:3])
            # Second campaign resumes the stored prefix and finishes.
            resumed = CampaignEngine(_WORKLOAD, config, store=store)
            resumed.run_transient()
            assert resumed.metrics.injections_loaded == 3
        ff = (tmp_path / "resumed-ff" / "results.csv").read_bytes()
        full = (tmp_path / "resumed-full" / "results.csv").read_bytes()
        assert ff == full

    def test_quarantine(self, tmp_path):
        """Campaigns containing harness failures keep byte parity: the
        quarantined (synthesized DUE) rows carry only deterministic fields."""
        retry = RetryPolicy(max_attempts=1, jitter=0.0)
        ff = _results_csv(
            tmp_path, "chaos", True,
            workload=FFChaosOMriq.name, num_transient=12, seed=4, retry=retry,
        )
        full = _results_csv(
            tmp_path, "chaos", False,
            workload=FFChaosOMriq.name, num_transient=12, seed=4, retry=retry,
        )
        assert ff == full
        assert b"Monitor detection" in ff  # the failures really quarantined


class TestTailByteParity:
    """Tail fast-forward on vs off (pre-target replay on in both): the
    re-armed tape restores the exact deltas the simulator would produce,
    so ``results.csv`` cannot move in any execution mode."""

    def _pair(self, tmp_path, label, **overrides):
        on = _results_csv(
            tmp_path, f"{label}-tail", True, tail_fast_forward=True, **overrides
        )
        off = _results_csv(
            tmp_path, f"{label}-notail", True, tail_fast_forward=False,
            **overrides,
        )
        return on, off

    def test_serial(self, tmp_path):
        on, off = self._pair(tmp_path, "serial")
        assert on == off

    @pytest.mark.slow
    def test_parallel(self, tmp_path):
        executor = ParallelExecutor(max_workers=2)
        on = _results_csv(
            tmp_path, "par-tail", True, executor=executor,
            tail_fast_forward=True,
        )
        off = _results_csv(
            tmp_path, "par-notail", True, tail_fast_forward=False
        )
        assert on == off

    def test_resumed(self, tmp_path):
        for tail, label in ((True, "tail"), (False, "notail")):
            store = CampaignStore(tmp_path / f"resumed-{label}")
            config = CampaignConfig(
                workload=_WORKLOAD, num_transient=_N, seed=_SEED,
                fast_forward=True, tail_fast_forward=tail,
            )
            first = CampaignEngine(_WORKLOAD, config, store=store)
            first.run_transient(first.select_sites()[:3])
            resumed = CampaignEngine(_WORKLOAD, config, store=store)
            resumed.run_transient()
            assert resumed.metrics.injections_loaded == 3
        on = (tmp_path / "resumed-tail" / "results.csv").read_bytes()
        off = (tmp_path / "resumed-notail" / "results.csv").read_bytes()
        assert on == off

    def test_quarantine(self, tmp_path):
        retry = RetryPolicy(max_attempts=1, jitter=0.0)
        on, off = self._pair(
            tmp_path, "chaos",
            workload=FFChaosOMriq.name, num_transient=12, seed=4, retry=retry,
        )
        assert on == off
        assert b"Monitor detection" in on  # the failures really quarantined


class TestReplayObservability:
    def _run(self, fast_forward, tail_fast_forward=True):
        sink = MemorySink()
        registry = MetricsRegistry()
        engine = CampaignEngine(
            _WORKLOAD,
            CampaignConfig(
                workload=_WORKLOAD, num_transient=_N, seed=_SEED,
                fast_forward=fast_forward,
                tail_fast_forward=tail_fast_forward,
            ),
            tracer=Tracer(sink=sink),
            metrics=registry,
        )
        engine.run_transient()
        return engine, sink, registry

    def test_counters_and_span_present(self):
        engine, sink, registry = self._run(fast_forward=True)
        snap = registry.snapshot()["counters"]
        assert snap["engine.replay.hits"] > 0
        assert snap["engine.replay.launches_skipped"] >= snap["engine.replay.hits"]
        assert len(spans(sink.events, "replay")) == 1
        assert "replay" in engine.metrics.phase_seconds

    def test_disabled_leaves_no_trace(self):
        engine, sink, registry = self._run(fast_forward=False)
        snap = registry.snapshot()["counters"]
        assert "engine.replay.hits" not in snap
        assert spans(sink.events, "replay") == []
        assert "replay" not in engine.metrics.phase_seconds

    def test_skips_bounded_by_target_launch(self):
        """Divergence guard, campaign level: an injection run may only have
        replayed launches strictly before its target launch — the target
        and everything after always simulate."""
        engine, sink, registry = self._run(fast_forward=True)
        log = engine._replay_log
        assert log is not None
        sites = engine.select_sites()
        stops = {
            index: log.stop_launch_for(site.kernel_name, site.kernel_count)
            for index, site in enumerate(sites)
        }
        # Sites whose target is the very first launch have no pre-target
        # window (their cursor is tail-only and reports 0 pre-replayed
        # launches).  Every windowed site replays exactly the launches
        # strictly before its target, never past it.
        windows = sorted(v for v in stops.values() if v)
        runs = [
            s for s in spans(sink.events, "run")
            if s["attrs"].get("replay_launches_skipped", 0) > 0
        ]
        assert len(spans(sink.events, "run")) >= _N
        assert len(runs) == len(windows)
        skipped = sorted(s["attrs"]["replay_launches_skipped"] for s in runs)
        assert skipped == windows  # each run skipped exactly its window
        assert all(v < len(log.launches) for v in windows)
        snap = registry.snapshot()["counters"]
        assert snap["engine.replay.launches_skipped"] == sum(windows)

    def test_tail_counters_and_span_attrs(self):
        """Masked faults dominate this campaign; at least one run must
        re-converge and tail-replay, feeding the tail counters, the
        converged-at histogram and the run-span attributes."""
        engine, sink, registry = self._run(fast_forward=True)
        snap = registry.snapshot()
        counters = snap["counters"]
        assert counters["engine.replay.tail_hits"] > 0
        assert (
            counters["engine.replay.tail_launches_skipped"]
            >= counters["engine.replay.tail_hits"]
        )
        histogram = snap["histograms"]["engine.replay.converged_at_launch"]
        assert histogram["count"] == counters["engine.replay.tail_hits"]
        converged = [
            s for s in spans(sink.events, "run")
            if s["attrs"].get("replay_tail_skipped", 0) > 0
        ]
        assert len(converged) == counters["engine.replay.tail_hits"]
        log = engine._replay_log
        for span in converged:
            attrs = span["attrs"]
            # The re-convergence boundary sits at or after the target and
            # strictly before the end of the tape, and the tail replays
            # exactly the remaining launches.
            assert 0 <= attrs["replay_converged_at"] < len(log.launches)
            assert attrs["replay_tail_skipped"] == (
                len(log.launches) - attrs["replay_converged_at"]
            )

    def test_tail_disabled_leaves_no_tail_counters(self):
        _, sink, registry = self._run(fast_forward=True, tail_fast_forward=False)
        counters = registry.snapshot()["counters"]
        assert counters["engine.replay.hits"] > 0  # pre-target replay still on
        assert "engine.replay.tail_hits" not in counters
        assert all(
            s["attrs"].get("replay_tail_skipped", 0) == 0
            for s in spans(sink.events, "run")
        )

    def test_api_override(self, tmp_path):
        """run_campaign(tail_fast_forward=...) overrides the config knob."""
        store = CampaignStore(tmp_path / "api-override")
        registry = MetricsRegistry()
        config = CampaignConfig(
            workload=_WORKLOAD, num_transient=_N, seed=_SEED,
            tail_fast_forward=True,
        )
        repro.run_campaign(
            config, store=CampaignStore(tmp_path / "api-override"),
            metrics=registry, tail_fast_forward=False,
        )
        assert "engine.replay.tail_hits" not in registry.snapshot()["counters"]
        baseline = _results_csv(tmp_path, "api-baseline", True)
        assert (store.root / "results.csv").read_bytes() == baseline
