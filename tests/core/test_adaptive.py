"""Adaptive campaign tests: stopping rules, sampling plans, determinism.

The contract under test (docs/statistics.md):

* every adaptive decision is a pure function of (seed, profile, plan,
  rule, outcomes so far), so the same seed stops at the same injection —
  serial, parallel or resumed;
* uniform adaptive draws consume the fixed-N path's RNG stream, so a
  budget-exhausted adaptive campaign is byte-identical to the fixed one;
* stratified/importance estimates stay unbiased through per-site weights.
"""

import numpy as np
import pytest

import repro
from repro.core.adaptive import (
    MIN_STRATUM_SAMPLES,
    AdaptiveState,
    SamplingPlan,
    StoppingRule,
    _largest_remainder,
)
from repro.core.campaign import CampaignConfig
from repro.core.engine import CampaignEngine, ParallelExecutor
from repro.core.outcomes import Outcome, OutcomeRecord
from repro.core.store import CampaignStore
from repro.errors import ParamError, ReproError
from repro.obs import MemorySink, MetricsRegistry, Tracer

_WORKLOAD = "303.ostencil"
_SEED = 3

# A rule the 303.ostencil campaign satisfies well before this budget
# (SDC is far from 0.5 there), so early stopping actually engages.
_RULE = StoppingRule(
    target_outcome="SDC", confidence=0.90, half_width=0.12, min_injections=10
)
_BUDGET = 60


def _sdc(n):
    return [OutcomeRecord(Outcome.SDC, "x") for _ in range(n)]


def _masked(n):
    return [OutcomeRecord(Outcome.MASKED, "x") for _ in range(n)]


class TestStoppingRule:
    def test_accepts_outcome_string(self):
        assert StoppingRule(target_outcome="DUE").target_outcome is Outcome.DUE

    def test_invalid_confidence(self):
        with pytest.raises(ParamError):
            StoppingRule(confidence=1.0)
        with pytest.raises(ParamError):
            StoppingRule(confidence=0.0)

    def test_invalid_half_width(self):
        with pytest.raises(ParamError, match="half-width"):
            StoppingRule(half_width=0.0)
        with pytest.raises(ParamError, match="half-width"):
            StoppingRule(half_width=0.5)

    def test_invalid_min_injections(self):
        with pytest.raises(ParamError, match="min_injections"):
            StoppingRule(min_injections=0)

    def test_fixed_n_is_the_worst_case_inversion(self):
        """The paper's own table: 0.95/±3% needs ~1000, 0.90/±8% ~100."""
        assert StoppingRule(confidence=0.95, half_width=0.05).fixed_n() == 385
        assert StoppingRule(confidence=0.95, half_width=0.03).fixed_n() == 1068
        assert StoppingRule(confidence=0.90, half_width=0.08).fixed_n() == 106

    def test_adaptive_never_needs_more_than_fixed_n(self):
        """At n = fixed_n the worst-case (p = 0.5) half-width already meets
        the target, so the rule must fire whatever the observed rate."""
        rule = StoppingRule(confidence=0.95, half_width=0.05)
        state = AdaptiveState(SamplingPlan(), rule, None)
        n = rule.fixed_n()
        for record in _sdc(n // 2) + _masked(n - n // 2):
            state.record("k", record)
        assert state.should_stop()


class TestSamplingPlan:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ParamError, match="sampling mode"):
            SamplingPlan(mode="quantum")

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ParamError, match="batch size"):
            SamplingPlan(batch_size=0)


class TestLargestRemainder:
    def test_sums_to_size_and_tracks_quotas(self):
        alloc = _largest_remainder({"a": 60.0, "b": 30.0, "c": 10.0}, 10)
        assert alloc == {"a": 6, "b": 3, "c": 1}

    def test_fractional_slots_go_to_largest_remainders(self):
        alloc = _largest_remainder({"a": 2.0, "b": 1.0}, 2)
        assert sum(alloc.values()) == 2
        assert alloc["a"] >= alloc["b"]

    def test_zero_total_splits_evenly(self):
        assert _largest_remainder({"a": 0.0, "b": 0.0}, 3) == {"a": 2, "b": 1}

    def test_deterministic(self):
        quotas = {"a": 1.5, "b": 1.5, "c": 1.0}
        assert all(
            _largest_remainder(quotas, 4) == _largest_remainder(quotas, 4)
            for _ in range(10)
        )


class TestAdaptiveState:
    def test_uniform_mode_has_no_allocation(self):
        state = AdaptiveState(SamplingPlan(), _RULE, None)
        assert state.allocate(10) is None
        assert state.site_weights() is None

    def test_proportional_allocation_matches_weights(self):
        state = AdaptiveState(
            SamplingPlan(mode="stratified"), None, {"a": 60, "b": 30, "c": 10}
        )
        assert state.allocate(10) == {"a": 6, "b": 3, "c": 1}

    def test_cumulative_deficit_repays_starved_strata(self):
        """A stratum short-changed in one batch is repaid in the next: the
        allocation targets cumulative W_h * drawn, not per-batch shares."""
        state = AdaptiveState(
            SamplingPlan(mode="stratified"), None, {"a": 60, "b": 30, "c": 10}
        )
        # Simulate a skewed first batch: everything went to "a".
        for record in _sdc(10):
            state.record("a", record)
        state.record_batch(0, 10, {"a": 10, "b": 0, "c": 0})
        alloc = state.allocate(10)
        assert sum(alloc.values()) == 10
        # Cumulative targets at n=20: a=12, b=6, c=2 → deficits 2, 6, 2.
        assert alloc == {"a": 2, "b": 6, "c": 2}

    def test_importance_seeds_unsampled_strata(self):
        state = AdaptiveState(
            SamplingPlan(mode="importance"), _RULE, {"a": 90, "b": 10}
        )
        for record in _sdc(5):
            state.record("a", record)
        state.record_batch(0, 5, {"a": 5, "b": 0})
        alloc = state.allocate(6)
        assert alloc["b"] >= 1  # an estimator term can't stay unknown
        assert sum(alloc.values()) == 6

    def test_importance_steers_toward_hot_strata(self):
        state = AdaptiveState(
            SamplingPlan(mode="importance"), _RULE, {"a": 50, "b": 50}
        )
        for record in _sdc(5):  # "a" is all-SDC
            state.record("a", record)
        for record in _masked(5):  # "b" is all-masked
            state.record("b", record)
        state.record_batch(0, 10, {"a": 5, "b": 5})
        alloc = state.allocate(10)
        assert alloc["a"] > alloc["b"]

    def test_record_outside_strata_rejected(self):
        state = AdaptiveState(
            SamplingPlan(mode="stratified"), None, {"a": 1}
        )
        with pytest.raises(ParamError, match="outside"):
            state.record("ghost", _sdc(1)[0])

    def test_uniform_estimate_matches_closed_form(self):
        state = AdaptiveState(SamplingPlan(), _RULE, None)
        for record in _sdc(30) + _masked(70):
            state.record("k", record)
        est = state.estimate(Outcome.SDC, 0.95)
        assert est.p_hat == pytest.approx(0.3)
        assert est.half_width == pytest.approx(
            1.9600 * np.sqrt(0.3 * 0.7 / 100), abs=1e-4
        )

    def test_stratified_estimator_weights_by_population(self):
        """p̂ = Σ W_h·p̂_h: equal sample sizes, unequal populations."""
        state = AdaptiveState(
            SamplingPlan(mode="stratified"), _RULE, {"a": 90, "b": 10}
        )
        for record in _sdc(10):  # a: 100% SDC
            state.record("a", record)
        for record in _masked(10):  # b: 0% SDC
            state.record("b", record)
        est = state.estimate(Outcome.SDC, 0.95)
        assert est.p_hat == pytest.approx(0.9)

    def test_weighted_tally_is_unbiased_under_any_allocation(self):
        """Per-site weights W_h/n_h make the weighted tally's fraction equal
        the stratified estimator, however the budget was steered."""
        for n_a, n_b in ((10, 10), (18, 2), (3, 17)):
            state = AdaptiveState(
                SamplingPlan(mode="importance"), _RULE, {"a": 60, "b": 40}
            )
            for record in _sdc(n_a):
                state.record("a", record)
            for record in _masked(n_b):
                state.record("b", record)
            summary = state.summary(budget=40, stopped_early_at=None)
            # a is all-SDC, b all-masked: the unbiased estimate is W_a = 0.6
            # regardless of the (deliberately skewed) allocation.
            assert summary.weighted_tally.fraction(Outcome.SDC) == (
                pytest.approx(0.6)
            )
            assert summary.weighted_tally.total == pytest.approx(1.0)

    def test_min_injections_gates_the_rule(self):
        state = AdaptiveState(SamplingPlan(), _RULE, None)
        for record in _masked(_RULE.min_injections - 1):
            state.record("k", record)
        assert not state.should_stop()  # p̂=0 has zero width, but n too small
        state.record("k", _masked(1)[0])
        assert state.should_stop()

    def test_min_stratum_samples_gate(self):
        state = AdaptiveState(
            SamplingPlan(mode="stratified"), _RULE, {"a": 99, "b": 1}
        )
        for record in _masked(50):
            state.record("a", record)
        assert not state.should_stop()  # "b" still unsampled
        for record in _masked(MIN_STRATUM_SAMPLES):
            state.record("b", record)
        assert state.should_stop()


def _run(tmp_path, label, budget=_BUDGET, rule=_RULE, plan=None,
         executor=None, seed=_SEED):
    store = CampaignStore(tmp_path / label)
    config = CampaignConfig(
        workload=_WORKLOAD, num_transient=budget, seed=seed,
        stopping=rule, sampling=plan,
    )
    result = repro.run_campaign(config, executor=executor, store=store)
    return result, (tmp_path / label / "results.csv").read_bytes()


class TestAdaptiveCampaign:
    def test_stops_early_and_meets_target(self, tmp_path):
        result, _ = _run(tmp_path, "early")
        summary = result.adaptive
        assert summary.stopped_early_at is not None
        assert summary.stopped_early_at < _BUDGET
        assert summary.injections_saved > 0
        assert summary.estimate.half_width <= _RULE.half_width

    def test_budget_exhausted_matches_fixed_n_bytes(self, tmp_path):
        """stopping set but never satisfied → exactly the fixed-N campaign."""
        strict = StoppingRule(confidence=0.99, half_width=0.01)
        _, adaptive = _run(tmp_path, "strict", budget=20, rule=strict)
        _, fixed = _run(tmp_path, "fixed", budget=20, rule=None)
        assert adaptive == fixed

    def test_early_stop_rows_are_prefix_of_fixed_plan(self, tmp_path):
        result, early = _run(tmp_path, "prefix-early")
        _, fixed = _run(tmp_path, "prefix-fixed", rule=None)
        early_lines = early.decode().splitlines()
        fixed_lines = fixed.decode().splitlines()
        assert len(early_lines) - 1 == result.adaptive.injections
        assert fixed_lines[: len(early_lines)] == early_lines

    def test_same_seed_same_stop_point(self, tmp_path):
        a, bytes_a = _run(tmp_path, "det-a")
        b, bytes_b = _run(tmp_path, "det-b")
        assert a.adaptive.stopped_early_at == b.adaptive.stopped_early_at
        assert bytes_a == bytes_b

    @pytest.mark.slow
    def test_parallel_identical_stop_and_bytes(self, tmp_path):
        serial, serial_bytes = _run(tmp_path, "ser")
        parallel, parallel_bytes = _run(
            tmp_path, "par", executor=ParallelExecutor(max_workers=2)
        )
        assert parallel.adaptive.stopped_early_at == (
            serial.adaptive.stopped_early_at
        )
        assert parallel_bytes == serial_bytes

    def test_resumed_identical_stop_and_bytes(self, tmp_path):
        """Delete a suffix of the stored runs and re-run: the campaign
        re-derives the same decision sequence and rewrites identical bytes."""
        import shutil

        first, first_bytes = _run(tmp_path, "resume")
        run_dirs = sorted((tmp_path / "resume" / "injections").iterdir())
        assert len(run_dirs) > 6
        for run_dir in run_dirs[-5:]:
            shutil.rmtree(run_dir)
        resumed, resumed_bytes = _run(tmp_path, "resume")
        assert resumed.adaptive.stopped_early_at == (
            first.adaptive.stopped_early_at
        )
        assert resumed_bytes == first_bytes

    def test_fully_resumed_campaign_reruns_nothing(self, tmp_path):
        _run(tmp_path, "full-resume")
        store = CampaignStore(tmp_path / "full-resume")
        config = CampaignConfig(
            workload=_WORKLOAD, num_transient=_BUDGET, seed=_SEED,
            stopping=_RULE,
        )
        engine = CampaignEngine(_WORKLOAD, config, store=store)
        result = engine.run_transient()
        assert engine.metrics.injections_done == 0
        assert engine.metrics.injections_loaded == result.adaptive.injections

    def test_resume_with_different_parameters_rejected(self, tmp_path):
        _run(tmp_path, "tape")
        with pytest.raises(ReproError, match="different parameters"):
            _run(tmp_path, "tape", seed=_SEED + 1)

    def test_adaptive_json_written(self, tmp_path):
        result, _ = _run(tmp_path, "tape-file")
        store = CampaignStore(tmp_path / "tape-file")
        tape = store.load_adaptive_state()
        assert tape is not None
        assert len(tape["batches"]) == result.adaptive.batches
        assert tape["stopped_early_at"] == result.adaptive.stopped_early_at

    def test_stratified_campaign_covers_every_stratum(self, tmp_path):
        result, _ = _run(
            tmp_path, "strat", plan=SamplingPlan(mode="stratified",
                                                 batch_size=10)
        )
        summary = result.adaptive
        names = {s.name for s in summary.strata}
        assert names == {"heat_step", "field_copy"}
        assert all(s.injections >= MIN_STRATUM_SAMPLES for s in summary.strata)
        assert summary.weighted_tally.total == pytest.approx(1.0)

    def test_importance_campaign_unbiased_vs_uniform(self, tmp_path):
        """Importance steering must not bias the estimate: its weighted
        estimate and the uniform estimate agree within their intervals."""
        uniform, _ = _run(tmp_path, "u")
        importance, _ = _run(
            tmp_path, "i", plan=SamplingPlan(mode="importance", batch_size=10)
        )
        u, i = uniform.adaptive.estimate, importance.adaptive.estimate
        assert abs(u.p_hat - i.p_hat) <= u.half_width + i.half_width

    def test_sampling_without_stopping_runs_full_budget(self, tmp_path):
        result, _ = _run(
            tmp_path, "no-rule", rule=None,
            plan=SamplingPlan(mode="stratified", batch_size=10), budget=20,
        )
        assert result.adaptive.injections == 20
        assert result.adaptive.stopped_early_at is None
        assert result.adaptive.rule is None


class TestAdaptiveObservability:
    def _traced_run(self, tmp_path):
        sink = MemorySink()
        registry = MetricsRegistry()
        config = CampaignConfig(
            workload=_WORKLOAD, num_transient=_BUDGET, seed=_SEED,
            stopping=_RULE,
        )
        result = repro.run_campaign(
            config, store=CampaignStore(tmp_path / "obs"),
            tracer=Tracer(sink=sink), metrics=registry,
        )
        return result, sink.events, registry

    def test_counters(self, tmp_path):
        result, _, registry = self._traced_run(tmp_path)
        assert registry.counter("engine.adaptive.batches").value == (
            result.adaptive.batches
        )
        assert registry.counter("engine.adaptive.injections_saved").value == (
            result.adaptive.injections_saved
        )

    def test_campaign_span_carries_stop_attrs(self, tmp_path):
        result, events, _ = self._traced_run(tmp_path)
        spans = [
            e for e in events
            if e.get("type") == "span" and e.get("name") == "campaign"
        ]
        assert len(spans) == 1
        attrs = spans[0]["attrs"]
        assert attrs["adaptive"] is True
        assert attrs["stopped_early_at"] == result.adaptive.stopped_early_at
        assert attrs["injections_saved"] == result.adaptive.injections_saved
        assert attrs["budget"] == _BUDGET

    def test_adaptive_batch_events(self, tmp_path):
        result, events, _ = self._traced_run(tmp_path)
        batches = [
            e for e in events
            if e.get("type") == "event" and e.get("name") == "adaptive_batch"
        ]
        assert len(batches) == result.adaptive.batches
        assert batches[-1]["attrs"]["half_width"] <= _RULE.half_width

    def test_phase_durations_aggregate_per_batch_spans(self, tmp_path):
        """The adaptive loop's per-batch select/inject spans must roll up in
        the standard phase breakdown (the campaign span is not a phase)."""
        from repro.core.report import phase_breakdown

        result, events, _ = self._traced_run(tmp_path)
        phases = phase_breakdown(events)
        assert "select" in phases and "inject" in phases
        assert "campaign" not in phases
