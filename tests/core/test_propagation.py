"""Error-propagation tracking tests."""

import numpy as np

from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup
from repro.core.injector import TransientInjectorTool
from repro.core.params import TransientParams
from repro.core.propagation import (
    MemoryTraceTool,
    compare_traces,
    trace_propagation,
)
from repro.runner.app import AppContext, Application
from repro.runner.sandbox import run_app

# Stage 1 writes a value; stage 2 spreads each cell into two cells;
# stage 3 overwrites everything with a constant.
_KERNEL = """
.kernel stage1
.params 1
    S2R R1, SR_TID.X ;
    IADD R2, R1, 100 ;
    MOV R3, c[0x0][0x0] ;
    ISCADD R4, R1, R3, 2 ;
    STG.32 [R4], R2 ;
    EXIT ;

.kernel stage2
.params 2
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    ISCADD R3, R1, R2, 2 ;
    LDG.32 R4, [R3] ;
    SHR.U32 R5, R1, 1 ;
    MOV R6, c[0x0][0x4] ;
    ISCADD R7, R5, R6, 2 ;
    LDG.32 R8, [R7] ;
    IADD R9, R4, R8 ;
    STG.32 [R3], R9 ;
    EXIT ;

.kernel stage3
.params 1
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    ISCADD R3, R1, R2, 2 ;
    MOV R4, 7 ;
    STG.32 [R3], R4 ;
    EXIT ;
"""


class StagedApp(Application):
    name = "staged"

    def __init__(self, overwrite: bool = False):
        self.overwrite = overwrite

    def run(self, ctx: AppContext) -> None:
        module = ctx.cuda.load_module(_KERNEL)
        a = ctx.cuda.alloc(32, np.uint32)
        b = ctx.cuda.alloc(32, np.uint32)
        b.from_host(np.arange(32, dtype=np.uint32))
        ctx.cuda.launch(ctx.cuda.get_function(module, "stage1"), 1, 32, a)
        ctx.cuda.launch(ctx.cuda.get_function(module, "stage2"), 1, 32, a, b)
        if self.overwrite:
            ctx.cuda.launch(ctx.cuda.get_function(module, "stage3"), 1, 32, a)
        ctx.write_file("out", a.to_host().tobytes())


def _injector(kernel="stage1", count=32):
    # stage1 G_GP stream: S2R(32), IADD(32), MOV(32), ISCADD(32).
    return TransientInjectorTool(TransientParams(
        group=InstructionGroup.G_GP,
        model=BitFlipModel.FLIP_SINGLE_BIT,
        kernel_name=kernel,
        kernel_count=0,
        instruction_count=count,  # 32 => IADD of lane 0
        dest_reg_selector=0.0,
        bit_pattern_value=10.2 / 32,
    ))


class TestMemoryTraceTool:
    def test_one_snapshot_per_launch(self):
        tracer = MemoryTraceTool()
        run_app(StagedApp(), preload=[tracer])
        assert [s.kernel_name for s in tracer.snapshots] == ["stage1", "stage2"]

    def test_snapshots_capture_live_allocations(self):
        tracer = MemoryTraceTool()
        run_app(StagedApp(), preload=[tracer])
        assert len(tracer.snapshots[0].regions) == 2  # arrays a and b

    def test_digests_stable_across_runs(self):
        first, second = MemoryTraceTool(), MemoryTraceTool()
        run_app(StagedApp(), preload=[first])
        run_app(StagedApp(), preload=[second])
        assert [s.digest() for s in first.snapshots] == [
            s.digest() for s in second.snapshots
        ]


class TestPropagation:
    def test_clean_run_never_diverges(self):
        trace = trace_propagation(StagedApp(), MemoryTraceTool())
        assert trace.peak_corruption == 0
        assert trace.first_divergence is None
        assert "no memory corruption" in trace.describe()

    def test_corruption_front_grows_through_stage2(self):
        trace = trace_propagation(StagedApp(), _injector())
        assert trace.first_divergence is not None
        assert trace.first_divergence.kernel_name == "stage1"
        # stage1 corrupts one 32-bit word; stage2 reads it back and spreads.
        first, second = trace.points
        assert 0 < first.corrupt_bytes <= 4
        assert second.corrupt_bytes >= first.corrupt_bytes

    def test_overwrite_masks_corruption(self):
        trace = trace_propagation(StagedApp(overwrite=True), _injector())
        assert trace.peak_corruption > 0
        assert trace.final_corruption == 0
        assert trace.was_overwritten
        assert "architecturally masked" in trace.describe()

    def test_compare_traces_handles_region_size_changes(self):
        from repro.core.propagation import MemorySnapshot

        golden = [MemorySnapshot("k", 0, {256: b"\x00" * 8})]
        faulty = [MemorySnapshot("k", 0, {256: b"\x00" * 4})]
        trace = compare_traces(golden, faulty)
        assert trace.points[0].corrupt_bytes == 8
        assert trace.points[0].corrupt_regions == 1

    def test_register_only_corruption_never_reaches_memory(self):
        # Corrupt the ISCADD (address) of a lane whose store then faults out
        # of bounds... instead pick a dead value: the MOV at stream pos 64
        # writes R3 (the base pointer) of lane 0 before ISCADD; flipping a
        # low bit of a *dead-after-use* register late in the stream leaves
        # memory untouched only if the value is never consumed. Use stage2's
        # final IADD destination on a lane whose store is then correct...
        # Simplest guaranteed case: injection that never activates.
        injector = _injector(kernel="stage1", count=10_000)
        trace = trace_propagation(StagedApp(), injector)
        assert not injector.record.injected
        assert trace.peak_corruption == 0
