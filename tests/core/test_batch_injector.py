"""Batched multi-fault execution: one counting pass per target launch.

Same contract as the snapshot tests: *results are byte-identical, only
wall-clock changes*.  The batch executor must reproduce the serial
campaign bit for bit — records, outcomes, simulated-cycle totals —
while servicing every same-launch fault from one shared counting pass
(``engine.batch.checkpoints`` / ``engine.batch.launches_shared`` prove
the pass actually ran, rather than a silent per-task fallback).
"""

from __future__ import annotations

import dataclasses

import pytest

import repro
from repro.core.batch_injector import BatchExecutor
from repro.core.campaign import CampaignConfig
from repro.core.engine import CampaignEngine, SerialExecutor
from repro.core.groups import InstructionGroup
from repro.core.resilience import (
    HARNESS_FAILURE_SYMPTOM,
    RetryPolicy,
    TaskFailure,
)
from repro.core.snapshot import SnapshotExecutor
from repro.core.store import CampaignStore
from repro.obs import MetricsRegistry

from tests.core.test_snapshot import SnapChaosOMriq, _chaos_workload  # noqa: F401

_WORKLOAD = "303.ostencil"  # multi-kernel, small: 21 golden launches
_N = 10
_SEED = 3

_FAST_RETRY = dict(backoff_base=0.001, backoff_factor=1.0, backoff_max=0.01,
                   jitter=0.0)


def _config(**overrides) -> CampaignConfig:
    return CampaignConfig(
        workload=_WORKLOAD, num_transient=_N, seed=_SEED
    ).with_overrides(**overrides)


def _campaign_csv(tmp_path, label, executor=None, config=None,
                  registry=None) -> bytes:
    store = CampaignStore(tmp_path / label)
    repro.run_campaign(
        config or _config(), executor=executor, store=store, metrics=registry
    )
    return (tmp_path / label / "results.csv").read_bytes()


@pytest.fixture(scope="module")
def serial_csv(tmp_path_factory) -> bytes:
    tmp = tmp_path_factory.mktemp("batch-serial-reference")
    store = CampaignStore(tmp / "serial")
    repro.run_campaign(_config(), executor=SerialExecutor(), store=store)
    return (tmp / "serial" / "results.csv").read_bytes()


class TestBatchParity:
    def test_batch_matches_serial_byte_for_byte(self, tmp_path, serial_csv):
        registry = MetricsRegistry()
        csv = _campaign_csv(
            tmp_path, "batch", executor=BatchExecutor(), registry=registry
        )
        assert csv == serial_csv
        values = registry.counter_values()
        # Every transient injection was serviced by an in-launch overlay
        # checkpoint (they are forks too, so both counters move)...
        assert values["engine.batch.checkpoints"] == _N
        assert values["engine.snapshot.forks"] == _N
        # ... and each fork *group* shared exactly one counting pass.
        assert 1 <= values["engine.batch.launches_shared"] <= _N

    def test_batch_cycle_totals_match_serial(self, tmp_path):
        serial_reg, batch_reg = MetricsRegistry(), MetricsRegistry()
        _campaign_csv(
            tmp_path, "cyc-serial", executor=SerialExecutor(),
            registry=serial_reg,
        )
        _campaign_csv(
            tmp_path, "cyc-batch", executor=BatchExecutor(),
            registry=batch_reg,
        )
        serial_values = serial_reg.counter_values()
        batch_values = batch_reg.counter_values()
        assert batch_values["gpusim.cycles"] == serial_values["gpusim.cycles"]
        assert (
            batch_values["gpusim.instructions_retired"]
            == serial_values["gpusim.instructions_retired"]
        )

    def test_sharded_batch_matches_serial(self, tmp_path, serial_csv):
        csv = _campaign_csv(
            tmp_path, "batch2", executor=BatchExecutor(max_workers=2)
        )
        assert csv == serial_csv

    def test_config_knob_selects_batch_executor(self, tmp_path, serial_csv):
        registry = MetricsRegistry()
        csv = _campaign_csv(
            tmp_path, "knob", config=_config(batch_launch=True),
            registry=registry,
        )
        assert csv == serial_csv
        assert registry.counter_values()["engine.batch.checkpoints"] == _N

    def test_snapshot_plus_batch_knobs_mean_batch(self, tmp_path, serial_csv):
        """The ISSUE's "snapshot+batch" CLI combination: batch subsumes."""
        engine = CampaignEngine(
            _WORKLOAD, _config(snapshot=True, batch_launch=True)
        )
        assert isinstance(engine.executor, BatchExecutor)
        registry = MetricsRegistry()
        csv = _campaign_csv(
            tmp_path, "snap-batch",
            config=_config(snapshot=True, batch_launch=True),
            registry=registry,
        )
        assert csv == serial_csv
        assert registry.counter_values()["engine.batch.checkpoints"] == _N

    def test_pipelined_children_match_serial(self, tmp_path, serial_csv,
                                             monkeypatch):
        """Concurrent overlay children change nothing but wall clock.

        ``os.fork`` snapshots the clean pass at each checkpoint, so a
        child's inputs cannot depend on when the parent reaps it; and
        reaping is oldest-first, so output order cannot depend on which
        child finishes first.  Forcing the in-flight window far above
        this campaign's group sizes exercises both properties.
        """
        monkeypatch.setenv("REPRO_BATCH_INFLIGHT", "4")
        registry = MetricsRegistry()
        csv = _campaign_csv(
            tmp_path, "pipelined", executor=BatchExecutor(),
            registry=registry,
        )
        assert csv == serial_csv
        assert registry.counter_values()["engine.batch.checkpoints"] == _N

    def test_resumed_batch_campaign_matches_serial(self, tmp_path, serial_csv):
        store = CampaignStore(tmp_path / "resumed")
        engine = CampaignEngine(
            _WORKLOAD, _config(), executor=BatchExecutor(), store=store
        )
        engine.plan_transient()
        engine.run_batch([0, 1, 2])
        # Resume in a fresh engine: the three checkpointed runs are
        # loaded, the remaining seven go through the batched pass.
        repro.run_campaign(_config(), executor=BatchExecutor(), store=store)
        assert (tmp_path / "resumed" / "results.csv").read_bytes() == serial_csv

    def test_fast_forward_off_falls_back_per_task(self, tmp_path, serial_csv):
        """No tape → no groups; every task runs solo yet results match."""
        registry = MetricsRegistry()
        csv = _campaign_csv(
            tmp_path,
            "noff",
            executor=BatchExecutor(),
            config=_config(fast_forward=False, tail_fast_forward=False),
            registry=registry,
        )
        assert csv == serial_csv
        assert "engine.batch.checkpoints" not in registry.counter_values()


class TestNeverReachedTargets:
    """Targets past the launch's group-instruction total fork at exit."""

    def _grouped_tasks(self):
        engine = CampaignEngine(_WORKLOAD, _config())
        engine.plan_transient()
        tasks = engine.draw_batch()
        groups: dict[tuple, list] = {}
        for task in tasks:
            groups.setdefault(
                (task.params.kernel_name, task.params.kernel_count), []
            ).append(task)
        return max(groups.values(), key=len)

    @staticmethod
    def _run(executor, tasks):
        outputs = {}
        for item in executor.run(list(tasks), retry=RetryPolicy()):
            assert not isinstance(item, TaskFailure), item
            outputs[item.index] = item
        return outputs

    def test_overshooting_count_completes_not_injected(self):
        group = self._grouped_tasks()
        assert len(group) >= 2, "seed must yield one multi-fault launch"
        # Retarget one sibling far past the launch's instruction total:
        # its overlay forks at launch exit and completes not-injected.
        overshoot = dataclasses.replace(
            group[-1],
            params=dataclasses.replace(
                group[-1].params, instruction_count=10_000_000
            ),
        )
        tasks = group[:-1] + [overshoot]
        serial = self._run(SerialExecutor(), tasks)
        batch = self._run(BatchExecutor(), tasks)
        assert set(batch) == set(serial)
        for index, expected in serial.items():
            got = batch[index]
            assert got.record == expected.record
            assert got.artifacts.cycles == expected.artifacts.cycles
            assert (
                got.artifacts.instructions_executed
                == expected.artifacts.instructions_executed
            )
        assert not batch[overshoot.index].record.injected
        reached = [t for t in tasks if t.index != overshoot.index]
        assert all(batch[t.index].record.injected for t in reached)


class TestOverlayForkerPipelining:
    """The forker's concurrency contract, independent of the simulator."""

    def test_results_stay_in_fork_order(self):
        import os
        import time

        from repro.gpusim.multifault import OverlayForker

        forker = OverlayForker(max_inflight=3)
        # The first child finishes last; fork order must still win.
        for index, delay in enumerate([0.2, 0.0, 0.1]):
            if forker.fork_overlay(index):
                time.sleep(delay)
                forker.ship(str(index).encode())
                os._exit(0)
        assert forker.checkpoints == 3
        forker.drain()
        assert forker.results == [(0, 0, b"0"), (1, 0, b"1"), (2, 0, b"2")]

    def test_inflight_cap_bounds_running_children(self):
        import os

        from repro.gpusim.multifault import OverlayForker

        forker = OverlayForker(max_inflight=1)
        for index in range(3):
            if forker.fork_overlay(index):
                forker.ship(b"x")
                os._exit(0)
            assert len(forker._pending) <= 1
        forker.drain()
        assert [payload for payload, _, _ in forker.results] == [0, 1, 2]


class TestPredicateDestinationFaults:
    """Satellite: predicate-destination faults through the batched path."""

    def _pred_config(self, **overrides):
        return _config(group=InstructionGroup.G_PR).with_overrides(**overrides)

    def test_pr_group_parity_and_pred_records(self, tmp_path):
        serial_store = CampaignStore(tmp_path / "pr-serial")
        serial = repro.run_campaign(
            self._pred_config(), executor=SerialExecutor(), store=serial_store
        )
        batch_store = CampaignStore(tmp_path / "pr-batch")
        batch = repro.run_campaign(
            self._pred_config(), executor=BatchExecutor(), store=batch_store
        )
        assert (
            (tmp_path / "pr-batch" / "results.csv").read_bytes()
            == (tmp_path / "pr-serial" / "results.csv").read_bytes()
        )
        pred_records = [
            r for r in batch.results if r.record.dest_kind == "pred"
        ]
        assert pred_records, "G_PR campaign must corrupt predicate dests"
        for ours, theirs in zip(batch.results, serial.results):
            assert ours.record == theirs.record


class TestNonPosixFallback:
    def test_delegates_to_serial_executor(self, tmp_path, serial_csv,
                                          monkeypatch):
        import os

        monkeypatch.delattr(os, "fork")
        csv = _campaign_csv(tmp_path, "nofork", executor=BatchExecutor())
        assert csv == serial_csv

    def test_engine_default_executor_degrades_to_serial(self, monkeypatch):
        import os

        monkeypatch.delattr(os, "fork")
        engine = CampaignEngine(_WORKLOAD, _config(batch_launch=True))
        assert isinstance(engine.executor, SerialExecutor)


class TestQuarantineParity:
    def _chaos_config(self):
        return CampaignConfig(
            workload=SnapChaosOMriq.name,
            num_transient=12,
            seed=7,
            retry=RetryPolicy(max_attempts=2, **_FAST_RETRY),
        )

    def test_overlay_child_death_quarantines_like_serial(self, tmp_path,
                                                         _chaos_workload):  # noqa: F811
        """A child dying past its checkpoint charges the same attempts and
        synthesizes the same DUE rows as a serial task raising."""
        serial = _campaign_csv(
            tmp_path, "chaos-serial", executor=SerialExecutor(),
            config=self._chaos_config(),
        )
        store = CampaignStore(tmp_path / "chaos-batch")
        result = repro.run_campaign(
            self._chaos_config(), executor=BatchExecutor(), store=store
        )
        assert (tmp_path / "chaos-batch" / "results.csv").read_bytes() == serial
        quarantined = [
            r for r in result.results
            if r.outcome.symptom == HARNESS_FAILURE_SYMPTOM
        ]
        assert len(quarantined) == 2


# -- multi-process batch shards + the bench workload (slow) --------------------


@pytest.mark.slow
class TestShardedBatch:
    def test_four_worker_batch_matches_serial(self, tmp_path, serial_csv):
        csv = _campaign_csv(
            tmp_path, "batch4", executor=BatchExecutor(max_workers=4)
        )
        assert csv == serial_csv


@pytest.mark.slow
class TestBigWorkloadParity:
    """370.bt parity across serial / batch / sharded batch / snapshot."""

    def test_370bt_byte_identical(self, tmp_path, monkeypatch):
        config = CampaignConfig(workload="370.bt", num_transient=10, seed=7)
        serial = _campaign_csv(
            tmp_path, "bt-serial", executor=SerialExecutor(), config=config
        )
        # Force a wide in-flight window so the full-size parity run also
        # exercises concurrent overlay children (divergent suffixes
        # running while the counting pass sweeps on).
        monkeypatch.setenv("REPRO_BATCH_INFLIGHT", "8")
        registry = MetricsRegistry()
        batch = _campaign_csv(
            tmp_path, "bt-batch", executor=BatchExecutor(), config=config,
            registry=registry,
        )
        monkeypatch.delenv("REPRO_BATCH_INFLIGHT")
        sharded = _campaign_csv(
            tmp_path, "bt-batch2", executor=BatchExecutor(max_workers=2),
            config=config,
        )
        snap = _campaign_csv(
            tmp_path, "bt-snap", executor=SnapshotExecutor(), config=config
        )
        assert batch == serial
        assert sharded == serial
        assert snap == serial
        assert registry.counter_values()["engine.batch.checkpoints"] == 10
