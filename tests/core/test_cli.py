"""CLI tests (`python -m repro ...`)."""

import pytest

from repro.core.cli import main
from repro.core.params import TransientParams


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("303.ostencil", "370.bt", "360.ilbdc"):
            assert name in out


class TestProfile:
    def test_profile_to_stdout(self, capsys):
        assert main(["profile", "314.omriq"]) == 0
        captured = capsys.readouterr()
        assert "computeQ" in captured.out
        assert "dynamic kernels" in captured.err

    def test_profile_to_file(self, tmp_path, capsys):
        target = tmp_path / "profile.txt"
        assert main(["profile", "360.ilbdc", "--output", str(target)]) == 0
        assert "ilbdc_lattice" in target.read_text()

    def test_approximate_mode(self, capsys):
        assert main(["profile", "360.ilbdc", "--mode", "approximate"]) == 0
        assert ";~;" in capsys.readouterr().out  # approximated records


class TestSelect:
    def test_select_emits_param_blocks(self, capsys):
        assert main(["select", "314.omriq", "--count", "3", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        blocks = [b for b in out.strip().split("\n\n") if b.strip()]
        assert len(blocks) == 3
        for block in blocks:
            TransientParams.from_text(block)  # must parse


class TestInject:
    def test_inject_from_param_file(self, tmp_path, capsys):
        params = TransientParams(
            group=8, model=1, kernel_name="computeQ", kernel_count=0,
            instruction_count=500, dest_reg_selector=0.1, bit_pattern_value=0.4,
        )
        path = tmp_path / "params.txt"
        path.write_text(params.to_text())
        code = main(["inject", "314.omriq", str(path)])
        out = capsys.readouterr().out
        assert "injected" in out
        assert code in (0, 1)


class TestCampaignCommand:
    def test_transient_campaign(self, capsys):
        assert main(["campaign", "360.ilbdc", "--injections", "4", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 transient injections" in out
        assert "SDC=" in out

    def test_campaign_with_permanent(self, capsys):
        assert main([
            "campaign", "314.omriq", "--injections", "2", "--permanent",
        ]) == 0
        out = capsys.readouterr().out
        assert "permanent injections" in out

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            main(["profile", "999.nope"])


class TestDump:
    def test_dump_all_kernels(self, capsys):
        assert main(["dump", "314.omriq"]) == 0
        out = capsys.readouterr().out
        assert ".kernel computePhiMag" in out
        assert ".kernel computeQ" in out
        assert "FFMA" in out

    def test_dump_single_kernel(self, capsys):
        assert main(["dump", "314.omriq", "--kernel", "computeQ"]) == 0
        out = capsys.readouterr().out
        assert ".kernel computeQ" in out
        assert ".kernel computePhiMag" not in out

    def test_dump_output_reassembles(self, capsys):
        from repro.sass import assemble

        main(["dump", "360.ilbdc"])
        out = capsys.readouterr().out
        module = assemble(out)
        assert "ilbdc_lattice" in module.kernels
