"""CLI tests (`python -m repro ...`)."""

import json

import pytest

from repro.core.cli import main
from repro.core.params import TransientParams


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("303.ostencil", "370.bt", "360.ilbdc"):
            assert name in out


class TestProfile:
    def test_profile_to_stdout(self, capsys):
        assert main(["profile", "314.omriq"]) == 0
        captured = capsys.readouterr()
        assert "computeQ" in captured.out
        assert "dynamic kernels" in captured.err

    def test_profile_to_file(self, tmp_path, capsys):
        target = tmp_path / "profile.txt"
        assert main(["profile", "360.ilbdc", "--output", str(target)]) == 0
        assert "ilbdc_lattice" in target.read_text()

    def test_approximate_mode(self, capsys):
        assert main(["profile", "360.ilbdc", "--mode", "approximate"]) == 0
        assert ";~;" in capsys.readouterr().out  # approximated records


class TestSelect:
    def test_select_emits_param_blocks(self, capsys):
        assert main(["select", "314.omriq", "--count", "3", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        blocks = [b for b in out.strip().split("\n\n") if b.strip()]
        assert len(blocks) == 3
        for block in blocks:
            TransientParams.from_text(block)  # must parse


class TestInject:
    def test_inject_from_param_file(self, tmp_path, capsys):
        params = TransientParams(
            group=8, model=1, kernel_name="computeQ", kernel_count=0,
            instruction_count=500, dest_reg_selector=0.1, bit_pattern_value=0.4,
        )
        path = tmp_path / "params.txt"
        path.write_text(params.to_text())
        code = main(["inject", "314.omriq", str(path)])
        out = capsys.readouterr().out
        assert "injected" in out
        assert code in (0, 1)


class TestInjectSandboxFlags:
    def _params_file(self, tmp_path):
        params = TransientParams(
            group=8, model=1, kernel_name="ilbdc_lattice", kernel_count=0,
            instruction_count=100, dest_reg_selector=0.3, bit_pattern_value=0.6,
        )
        path = tmp_path / "params.txt"
        path.write_text(params.to_text())
        return str(path)

    def test_inject_accepts_sandbox_flags(self, tmp_path, capsys):
        code = main([
            "inject", "360.ilbdc", self._params_file(tmp_path),
            "--family", "volta", "--num-sms", "4", "--env", "DEBUG=1",
        ])
        assert code in (0, 1)
        assert "injected" in capsys.readouterr().out

    def test_inject_matches_api_result(self, tmp_path, capsys):
        """The CLI routes through repro.api.inject: same record, same outcome."""
        from repro import api

        params_path = self._params_file(tmp_path)
        code = main(["inject", "360.ilbdc", params_path])
        out = capsys.readouterr().out

        params = TransientParams.from_text(
            (tmp_path / "params.txt").read_text()
        )
        expected = api.inject("360.ilbdc", params)
        assert expected.record.describe() in out
        assert expected.outcome.label() in out
        assert code == (0 if expected.masked else 1)

    def test_bad_env_flag_rejected(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="KEY=VALUE"):
            main([
                "inject", "360.ilbdc", self._params_file(tmp_path),
                "--env", "NOEQUALS",
            ])


class TestObservabilityFlags:
    def test_campaign_trace_and_metrics_json(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main([
            "campaign", "360.ilbdc", "--injections", "3", "--seed", "2",
            "--trace", str(trace_path), "--metrics", "json", "--format", "json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["injections"] == 3
        assert doc["metrics"]["counters"]["engine.injections.done"] == 3

        from repro.core.report import phase_breakdown, tally_from_trace

        durations = phase_breakdown(str(trace_path))
        assert {"golden", "profile", "select", "inject"} <= set(durations)
        tally = tally_from_trace(str(trace_path))
        assert tally.total == 3
        assert tally.fractions() == doc["fractions"]

    def test_campaign_metrics_text(self, capsys):
        assert main([
            "campaign", "360.ilbdc", "--injections", "2", "--seed", "2",
            "--metrics", "text",
        ]) == 0
        out = capsys.readouterr().out
        assert "engine.injections.done 2" in out

    def test_trace_subcommand_renders_breakdown(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        main([
            "campaign", "360.ilbdc", "--injections", "2", "--seed", "2",
            "--trace", str(trace_path),
        ])
        capsys.readouterr()
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "phase" in out
        assert "inject" in out
        assert "2 injection event(s)" in out

    def test_select_format_json(self, capsys):
        assert main([
            "select", "360.ilbdc", "--count", "2", "--seed", "9",
            "--format", "json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc) == 2
        for site in doc:
            TransientParams(**site)  # must reconstruct


class TestHelpSnapshots:
    """Help-text snapshots: every user-facing knob must stay advertised.

    A flag silently dropped from the parser (or renamed) changes the
    public interface; these assertions pin the inventory without pinning
    argparse's exact formatting."""

    def _help(self, capsys, *argv):
        with pytest.raises(SystemExit) as exc:
            main([*argv, "--help"])
        assert exc.value.code == 0
        return capsys.readouterr().out

    def test_top_level_lists_every_subcommand(self, capsys):
        out = self._help(capsys)
        for sub in ("list", "profile", "select", "inject", "campaign",
                    "trace", "report", "dump"):
            assert sub in out

    def test_campaign_lists_every_knob(self, capsys):
        out = self._help(capsys, "campaign")
        for flag in (
            "--injections", "--group", "--model", "--permanent",
            "--workers", "--chunksize", "--store", "--progress",
            "--format", "--max-attempts", "--task-timeout", "--on-failure",
            "--fast-forward", "--no-fast-forward",
            "--tail-fast-forward", "--no-tail-fast-forward",
            "--snapshot", "--no-snapshot", "--replay-cache",
            "--seed", "--trace", "--metrics",
            "--target-outcome", "--confidence", "--half-width",
            "--sampling", "--batch-size",
        ):
            assert flag in out, f"{flag} missing from campaign --help"

    def test_campaign_adaptive_choices_advertised(self, capsys):
        out = self._help(capsys, "campaign")
        for choice in ("SDC", "DUE", "Masked",
                       "uniform", "stratified", "importance"):
            assert choice in out

    def test_report_lists_every_knob(self, capsys):
        out = self._help(capsys, "report")
        assert "ci" in out
        assert "--confidence" in out

    def test_tail_help_states_the_contract(self, capsys):
        """The tail knob's help must say what makes it safe to leave on.
        (argparse may wrap hyphenated words, so compare ignoring
        whitespace.)"""
        out = "".join(self._help(capsys, "campaign").split())
        assert "byte-identical" in out
        assert "re-convergeswiththegoldenrun" in out

    def test_inject_lists_sandbox_flags(self, capsys):
        out = self._help(capsys, "inject")
        for flag in ("--seed", "--family", "--num-sms", "--env"):
            assert flag in out


class TestCampaignCommand:
    def test_transient_campaign(self, capsys):
        assert main(["campaign", "360.ilbdc", "--injections", "4", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 transient injections" in out
        assert "SDC=" in out

    def test_campaign_with_permanent(self, capsys):
        assert main([
            "campaign", "314.omriq", "--injections", "2", "--permanent",
        ]) == 0
        out = capsys.readouterr().out
        assert "permanent injections" in out

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown workload"):
            main(["profile", "999.nope"])


class TestAdaptiveCampaignCommand:
    _ADAPTIVE = [
        "campaign", "303.ostencil", "--seed", "3",
        "--target-outcome", "SDC", "--confidence", "0.9",
        "--half-width", "0.12", "--batch-size", "10", "--injections", "60",
    ]

    def test_adaptive_summary_printed(self, capsys):
        assert main(self._ADAPTIVE) == 0
        out = capsys.readouterr().out
        assert "sampling=uniform" in out
        assert "stopped early at" in out

    def test_adaptive_json_document(self, capsys):
        assert main([*self._ADAPTIVE, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        adaptive = doc["adaptive"]
        assert adaptive["budget"] == 60
        assert adaptive["stopped_early_at"] is not None
        assert adaptive["injections_saved"] > 0
        assert adaptive["estimate"]["half_width"] <= 0.12

    def test_budget_defaults_to_fixed_n(self, capsys):
        """--target-outcome without --injections caps the campaign at the
        rule's fixed-N equivalent (0.90/±0.12 → 47)."""
        assert main([
            "campaign", "303.ostencil", "--seed", "3",
            "--target-outcome", "SDC", "--confidence", "0.9",
            "--half-width", "0.12", "--batch-size", "10",
            "--format", "json",
        ]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["adaptive"]["budget"] == 47

    def test_stratified_sampling_flag(self, capsys):
        assert main([
            "campaign", "303.ostencil", "--seed", "3", "--injections", "20",
            "--sampling", "stratified", "--batch-size", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "sampling=stratified" in out
        assert "per-stratum injections" in out


class TestReportCommand:
    def _store(self, tmp_path):
        store = tmp_path / "study"
        main([
            "campaign", "303.ostencil", "--seed", "3", "--injections", "6",
            "--store", str(store),
        ])
        return store

    def test_report_ci_renders_strata(self, tmp_path, capsys):
        store = self._store(tmp_path)
        capsys.readouterr()
        assert main(["report", "ci", str(store)]) == 0
        out = capsys.readouterr().out
        assert "confidence level: 95%" in out
        assert "(all)" in out
        assert "heat_step" in out

    def test_report_ci_custom_confidence(self, tmp_path, capsys):
        store = self._store(tmp_path)
        capsys.readouterr()
        assert main(["report", "ci", str(store), "--confidence", "0.8"]) == 0
        assert "confidence level: 80%" in capsys.readouterr().out

    def test_report_ci_empty_partial_results(self, tmp_path, capsys):
        """An interrupted campaign's header-only results.csv renders n/a."""
        store = tmp_path / "empty"
        store.mkdir()
        (store / "results.csv").write_text(
            "index,kernel,kernel_count,instruction_count,group,model,"
            "outcome,symptom,potential_due,injected,instructions\n"
        )
        assert main(["report", "ci", str(store)]) == 0
        out = capsys.readouterr().out
        assert "n/a" in out
        assert "no completed injections" in out

    def test_report_ci_missing_store(self, tmp_path):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="no results.csv"):
            main(["report", "ci", str(tmp_path / "nowhere")])


class TestDump:
    def test_dump_all_kernels(self, capsys):
        assert main(["dump", "314.omriq"]) == 0
        out = capsys.readouterr().out
        assert ".kernel computePhiMag" in out
        assert ".kernel computeQ" in out
        assert "FFMA" in out

    def test_dump_single_kernel(self, capsys):
        assert main(["dump", "314.omriq", "--kernel", "computeQ"]) == 0
        out = capsys.readouterr().out
        assert ".kernel computeQ" in out
        assert ".kernel computePhiMag" not in out

    def test_dump_output_reassembles(self, capsys):
        from repro.sass import assemble

        main(["dump", "360.ilbdc"])
        out = capsys.readouterr().out
        module = assemble(out)
        assert "ilbdc_lattice" in module.kernels
