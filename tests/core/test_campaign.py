"""Campaign-orchestration tests (end-to-end over a small real workload)."""

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.outcomes import Outcome
from repro.core.params import IntermittentParams, PermanentParams
from repro.runner.golden import GoldenError
from repro.runner.sandbox import SandboxConfig
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def campaign():
    config = CampaignConfig(num_transient=12, seed=11)
    instance = Campaign(get_workload("314.omriq"), config)
    instance.run_golden()
    instance.run_profile()
    return instance


class TestPhases:
    def test_golden_is_clean(self, campaign):
        golden = campaign.golden
        assert golden.exit_status == 0
        assert not golden.cuda_errors and not golden.dmesg
        assert golden.files

    def test_profile_covers_program(self, campaign):
        profile = campaign.profile
        assert profile.num_dynamic_kernels == 2
        assert profile.num_static_kernels == 2
        assert profile.total_count() > 1000

    def test_sites_deterministic_for_seed(self, campaign):
        assert campaign.select_sites(5) == campaign.select_sites(5)

    def test_different_seeds_give_different_sites(self):
        app = get_workload("314.omriq")
        a = Campaign(app, CampaignConfig(seed=1))
        b = Campaign(app, CampaignConfig(seed=2))
        a.run_golden(); a.run_profile()
        b.run_golden(); b.run_profile()
        assert a.select_sites(5) != b.select_sites(5)


class TestTransientCampaign:
    def test_full_run(self, campaign):
        result = campaign.run_transient()
        assert len(result.results) == 12
        assert result.tally.total == 12
        fractions = result.tally.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        assert result.median_injection_time > 0
        assert result.total_time > result.profile_time

    def test_every_result_has_outcome_and_record(self, campaign):
        result = campaign.run_transient(campaign.select_sites(4))
        for item in result.results:
            assert item.outcome.outcome in Outcome
            assert item.params.kernel_name in ("computePhiMag", "computeQ")

    def test_reproducible_outcomes(self):
        def run():
            instance = Campaign(
                get_workload("360.ilbdc"),
                CampaignConfig(num_transient=6, seed=5),
            )
            result = instance.run_transient()
            return [r.outcome.outcome for r in result.results]

        assert run() == run()


class TestPermanentCampaign:
    def test_one_injection_per_executed_opcode(self, campaign):
        result = campaign.run_permanent()
        opcodes = [r.opcode for r in result.results]
        assert sorted(opcodes) == sorted(campaign.profile.executed_opcodes())

    def test_weights_sum_to_one(self, campaign):
        result = campaign.run_permanent()
        assert sum(r.weight for r in result.results) == pytest.approx(1.0)

    def test_weighted_tally(self, campaign):
        result = campaign.run_permanent()
        assert result.tally.total == pytest.approx(1.0)


class TestIntermittentRun:
    def test_single_run(self, campaign):
        site = PermanentParams(sm_id=0, lane_id=0, bit_mask=1 << 3, opcode_id=24)
        params = IntermittentParams(site, process="random",
                                    activation_probability=0.2, seed=1)
        result = campaign.run_intermittent(params)
        assert result.outcome.outcome in Outcome


class TestGoldenValidation:
    def test_bad_golden_rejected(self):
        from repro.runner.app import Application

        class BrokenApp(Application):
            name = "broken"

            def run(self, ctx):
                ctx.exit(1)

        campaign = Campaign(BrokenApp(), CampaignConfig())
        with pytest.raises(GoldenError, match="status 1"):
            campaign.run_golden()

    def test_tiny_budget_rejected(self):
        config = CampaignConfig(
            sandbox=SandboxConfig(instruction_budget=100)
        )
        campaign = Campaign(get_workload("314.omriq"), config)
        with pytest.raises(GoldenError, match="budget"):
            campaign.run_golden()


class TestWithOverrides:
    def test_unknown_key_rejected(self):
        from repro.errors import ParamError

        with pytest.raises(ParamError, match="unknown campaign config override"):
            CampaignConfig().with_overrides(num_transiet=5)

    def test_none_values_keep_the_base(self):
        base = CampaignConfig(num_transient=7, seed=4)
        assert base.with_overrides(num_transient=None, seed=None) == base

    def test_overrides_apply_without_mutating_the_base(self):
        base = CampaignConfig(num_transient=7, seed=4)
        bumped = base.with_overrides(num_transient=9, fast_forward=False)
        assert (bumped.num_transient, bumped.fast_forward) == (9, False)
        assert bumped.seed == 4
        assert (base.num_transient, base.fast_forward) == (7, True)

    def test_empty_overrides_return_self(self):
        base = CampaignConfig()
        assert base.with_overrides() is base
