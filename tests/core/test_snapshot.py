"""Snapshot execution + persistent replay cache.

The contract under test is the usual one: *results are byte-identical,
only wall-clock changes*.  Fork-based snapshot children must reproduce
the serial campaign bit for bit — including the quarantine/retry paths,
where a child dying at the injection point must charge the same attempt
counts and synthesize the same DUE rows as a serial task raising.  The
persistent :class:`~repro.core.snapshot.ReplayCache` must likewise never
change artifacts: a hit only swaps simulated golden launches for replayed
ones.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

import repro
from repro.core.campaign import CampaignConfig
from repro.core.engine import CampaignEngine, SerialExecutor
from repro.core.resilience import HARNESS_FAILURE_SYMPTOM, RetryPolicy
from repro.core.snapshot import (
    ReplayCache,
    SnapshotExecutor,
    default_cache_root,
    snapshot_supported,
)
from repro.core.store import CampaignStore
from repro.obs import MetricsRegistry
from repro.runner.sandbox import SandboxConfig
from repro.workloads.omriq import OMriq
from repro.workloads.registry import WORKLOADS

_WORKLOAD = "303.ostencil"  # multi-kernel, small: 21 golden launches
_N = 10
_SEED = 3

# Fast-but-real backoff (jitter off so retry schedules are deterministic).
_FAST_RETRY = dict(backoff_base=0.001, backoff_factor=1.0, backoff_max=0.01,
                   jitter=0.0)


def _config(**overrides) -> CampaignConfig:
    return CampaignConfig(
        workload=_WORKLOAD, num_transient=_N, seed=_SEED
    ).with_overrides(**overrides)


def _campaign_csv(tmp_path, label, executor=None, config=None,
                  registry=None) -> bytes:
    store = CampaignStore(tmp_path / label)
    repro.run_campaign(
        config or _config(), executor=executor, store=store, metrics=registry
    )
    return (tmp_path / label / "results.csv").read_bytes()


@pytest.fixture(scope="module")
def serial_csv(tmp_path_factory) -> bytes:
    tmp = tmp_path_factory.mktemp("snapshot-serial-reference")
    store = CampaignStore(tmp / "serial")
    repro.run_campaign(_config(), executor=SerialExecutor(), store=store)
    return (tmp / "serial" / "results.csv").read_bytes()


class TestForkParity:
    def test_supported_on_posix(self):
        assert snapshot_supported()

    def test_snapshot_matches_serial_byte_for_byte(self, tmp_path, serial_csv):
        registry = MetricsRegistry()
        csv = _campaign_csv(
            tmp_path, "snap", executor=SnapshotExecutor(), registry=registry
        )
        assert csv == serial_csv
        # Every transient injection must have been serviced by a fork
        # child, not a silent per-task fallback.
        assert registry.counter_values()["engine.snapshot.forks"] == _N

    def test_sharded_snapshot_matches_serial(self, tmp_path, serial_csv):
        csv = _campaign_csv(
            tmp_path, "snap2", executor=SnapshotExecutor(max_workers=2)
        )
        assert csv == serial_csv

    def test_config_knob_selects_snapshot_executor(self, tmp_path, serial_csv):
        registry = MetricsRegistry()
        csv = _campaign_csv(
            tmp_path, "knob", config=_config(snapshot=True), registry=registry
        )
        assert csv == serial_csv
        assert registry.counter_values()["engine.snapshot.forks"] == _N

    def test_resumed_snapshot_campaign_matches_serial(self, tmp_path,
                                                      serial_csv):
        store = CampaignStore(tmp_path / "resumed")
        engine = CampaignEngine(
            _WORKLOAD, _config(), executor=SnapshotExecutor(), store=store
        )
        engine.plan_transient()
        engine.run_batch([0, 1, 2])
        # Resume in a fresh engine: the three checkpointed runs are loaded,
        # the remaining seven go through the snapshot path.
        repro.run_campaign(
            _config(), executor=SnapshotExecutor(), store=store
        )
        assert (tmp_path / "resumed" / "results.csv").read_bytes() == serial_csv

    def test_fast_forward_off_falls_back_per_task(self, tmp_path, serial_csv):
        """No tape → no groups; every task runs solo yet results match."""
        registry = MetricsRegistry()
        csv = _campaign_csv(
            tmp_path,
            "noff",
            executor=SnapshotExecutor(),
            config=_config(fast_forward=False, tail_fast_forward=False),
            registry=registry,
        )
        assert csv == serial_csv
        assert "engine.snapshot.forks" not in registry.counter_values()


class TestNonPosixFallback:
    def test_delegates_to_serial_executor(self, tmp_path, serial_csv,
                                          monkeypatch):
        import os

        import repro.core.snapshot as snapshot_mod

        monkeypatch.delattr(os, "fork")
        assert not snapshot_mod.snapshot_supported()
        csv = _campaign_csv(tmp_path, "nofork", executor=SnapshotExecutor())
        assert csv == serial_csv

    def test_engine_default_executor_degrades_to_serial(self, monkeypatch):
        import os

        monkeypatch.delattr(os, "fork")
        engine = CampaignEngine(_WORKLOAD, _config(snapshot=True))
        assert isinstance(engine.executor, SerialExecutor)


class TestRunBatchStop:
    def test_preset_stop_runs_nothing(self):
        engine = CampaignEngine(_WORKLOAD, _config())
        engine.plan_transient()
        stop = threading.Event()
        stop.set()
        assert engine.run_batch([0, 1, 2], stop=stop) == {}

    def test_stop_mid_batch_keeps_completed_results(self):
        from repro.core.engine import EngineHooks

        stop = threading.Event()

        class StopAfterFirst(EngineHooks):
            def on_injection(self, index, outcome, completed, total, tally):
                stop.set()

        engine = CampaignEngine(_WORKLOAD, _config(), hooks=StopAfterFirst())
        engine.plan_transient()
        results = engine.run_batch([0, 1, 2, 3], stop=stop)
        assert len(results) == 1  # the in-flight run lands, no new one starts


# -- quarantine / retry parity -------------------------------------------------


class SnapChaosOMriq(OMriq):
    """OMriq variant that raises whenever the fault corrupts the output.

    The failure is a deterministic function of the injected fault (seed 7
    corrupts exactly 2 of 12 outputs for this workload name — the site RNG
    stream is keyed by it), so serial and snapshot campaigns fail — and
    quarantine — exactly the same tasks.
    """

    name = "999.snapchaos"
    description = "OMriq variant that fails the harness on corrupted output"

    def run(self, ctx) -> None:
        super().run(ctx)
        data = np.frombuffer(ctx.files[self.output_file], dtype=np.float32)
        finite = data[np.isfinite(data)]
        corrupted = finite.size != data.size or bool(
            (np.abs(finite) > 1e6).any()
        )
        if corrupted:
            # Outside run_app's catch list: kills the injection task (in a
            # fork child: the child process) rather than classifying.
            raise RuntimeError("snapchaos: corrupted device output")


@pytest.fixture()
def _chaos_workload():
    WORKLOADS[SnapChaosOMriq.name] = SnapChaosOMriq
    yield
    WORKLOADS.pop(SnapChaosOMriq.name, None)


class TestQuarantineParity:
    def _chaos_config(self):
        return CampaignConfig(
            workload=SnapChaosOMriq.name,
            num_transient=12,
            seed=7,
            retry=RetryPolicy(max_attempts=2, **_FAST_RETRY),
        )

    def test_fork_child_death_quarantines_like_serial(self, tmp_path,
                                                      _chaos_workload):
        serial = _campaign_csv(
            tmp_path, "chaos-serial", executor=SerialExecutor(),
            config=self._chaos_config(),
        )
        store = CampaignStore(tmp_path / "chaos-snap")
        result = repro.run_campaign(
            self._chaos_config(), executor=SnapshotExecutor(), store=store
        )
        assert (tmp_path / "chaos-snap" / "results.csv").read_bytes() == serial
        quarantined = [
            r for r in result.results
            if r.outcome.symptom == HARNESS_FAILURE_SYMPTOM
        ]
        assert len(quarantined) == 2


# -- persistent replay cache ---------------------------------------------------


class TestReplayCache:
    def test_resolve_semantics(self, tmp_path):
        assert ReplayCache.resolve(None) is None
        assert ReplayCache.resolve(False) is None
        assert ReplayCache.resolve(True).root == default_cache_root()
        assert ReplayCache.resolve(str(tmp_path)).root == tmp_path

    def test_env_overrides_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_REPLAY_CACHE", str(tmp_path / "env-cache"))
        assert default_cache_root() == tmp_path / "env-cache"

    def test_cold_then_warm_campaign_is_byte_identical(self, tmp_path,
                                                       serial_csv):
        cache_dir = tmp_path / "cache"
        cold_reg, warm_reg = MetricsRegistry(), MetricsRegistry()
        cold = _campaign_csv(
            tmp_path, "cold", config=_config(replay_cache=str(cache_dir)),
            registry=cold_reg,
        )
        warm = _campaign_csv(
            tmp_path, "warm", config=_config(replay_cache=str(cache_dir)),
            registry=warm_reg,
        )
        assert cold == warm == serial_csv
        assert cold_reg.counter_values()["engine.cache.misses"] == 1
        assert "engine.cache.hits" not in cold_reg.counter_values()
        assert warm_reg.counter_values()["engine.cache.hits"] == 1
        assert warm_reg.counter_values()["engine.cache.profile_hits"] == 1
        assert "engine.cache.misses" not in warm_reg.counter_values()
        # One tape + one sidecar + one instruction profile for the single
        # (workload, config) key.
        assert len(list(cache_dir.glob("*.bin"))) == 1
        assert len(list(cache_dir.glob("*.json"))) == 1
        assert len(list(cache_dir.glob("*.profile"))) == 1

    def test_stale_profile_entry_is_recounted(self, tmp_path, serial_csv):
        # A profile recorded against a different tape (sha mismatch) must
        # never be trusted: the warm run re-profiles and still matches.
        cache_dir = tmp_path / "cache"
        _campaign_csv(tmp_path, "seed", config=_config(replay_cache=str(cache_dir)))
        entry = next(cache_dir.glob("*.profile"))
        payload = json.loads(entry.read_text())
        payload["tape_sha256"] = "0" * 64
        entry.write_text(json.dumps(payload))
        registry = MetricsRegistry()
        csv = _campaign_csv(
            tmp_path, "stale-profile",
            config=_config(replay_cache=str(cache_dir)), registry=registry,
        )
        assert csv == serial_csv
        values = registry.counter_values()
        assert values["engine.cache.hits"] == 1  # the tape itself still hits
        assert "engine.cache.profile_hits" not in values  # profile recounted
        # ... and the recount repaired the cache entry.
        reg2 = MetricsRegistry()
        _campaign_csv(
            tmp_path, "repaired",
            config=_config(replay_cache=str(cache_dir)), registry=reg2,
        )
        assert reg2.counter_values()["engine.cache.profile_hits"] == 1

    def test_different_sandbox_fingerprint_misses(self, tmp_path):
        cache_dir = tmp_path / "cache"
        _campaign_csv(tmp_path, "a", config=_config(replay_cache=str(cache_dir)))
        registry = MetricsRegistry()
        other = _config(
            replay_cache=str(cache_dir),
            sandbox=SandboxConfig(seed=99),
        )
        _campaign_csv(tmp_path, "b", config=other, registry=registry)
        assert registry.counter_values()["engine.cache.misses"] == 1
        assert len(list(tmp_path.glob("cache/*.bin"))) == 2

    def test_corrupt_entry_degrades_to_miss(self, tmp_path, serial_csv):
        cache_dir = tmp_path / "cache"
        _campaign_csv(tmp_path, "seed", config=_config(replay_cache=str(cache_dir)))
        entry = next(cache_dir.glob("*.bin"))
        blob = bytearray(entry.read_bytes())
        blob[-1] ^= 0xFF  # flip one tape byte: content hash now mismatches
        entry.write_bytes(bytes(blob))
        registry = MetricsRegistry()
        csv = _campaign_csv(
            tmp_path, "after-corruption",
            config=_config(replay_cache=str(cache_dir)), registry=registry,
        )
        assert csv == serial_csv  # fell back to recording, results intact
        assert registry.counter_values()["engine.cache.misses"] == 1
        # The fallback recording replaced the corrupt entry.
        reg2 = MetricsRegistry()
        _campaign_csv(
            tmp_path, "rewarmed",
            config=_config(replay_cache=str(cache_dir)), registry=reg2,
        )
        assert reg2.counter_values()["engine.cache.hits"] == 1

    def test_cache_plus_snapshot_compose(self, tmp_path, serial_csv):
        cache_dir = tmp_path / "cache"
        registry = MetricsRegistry()
        _campaign_csv(
            tmp_path, "compose-cold",
            config=_config(snapshot=True, replay_cache=str(cache_dir)),
        )
        csv = _campaign_csv(
            tmp_path, "compose-warm",
            config=_config(snapshot=True, replay_cache=str(cache_dir)),
            registry=registry,
        )
        assert csv == serial_csv
        values = registry.counter_values()
        assert values["engine.cache.hits"] == 1
        assert values["engine.snapshot.forks"] == _N


# -- multi-process snapshot shards (slow) --------------------------------------


@pytest.mark.slow
class TestShardedSnapshot:
    def test_four_worker_snapshot_matches_serial(self, tmp_path, serial_csv):
        csv = _campaign_csv(
            tmp_path, "snap4", executor=SnapshotExecutor(max_workers=4)
        )
        assert csv == serial_csv


@pytest.mark.slow
class TestBigWorkloadParity:
    """Satellite: 370.bt parity across serial / snapshot / sharded snapshot."""

    def test_370bt_byte_identical(self, tmp_path):
        config = CampaignConfig(workload="370.bt", num_transient=10, seed=7)
        serial = _campaign_csv(
            tmp_path, "bt-serial", executor=SerialExecutor(), config=config
        )
        registry = MetricsRegistry()
        snap = _campaign_csv(
            tmp_path, "bt-snap", executor=SnapshotExecutor(), config=config,
            registry=registry,
        )
        sharded = _campaign_csv(
            tmp_path, "bt-snap2", executor=SnapshotExecutor(max_workers=2),
            config=config,
        )
        assert snap == serial
        assert sharded == serial
        assert registry.counter_values()["engine.snapshot.forks"] == 10
