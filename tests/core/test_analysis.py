"""AVF-analysis tests."""

import pytest

from repro.core.analysis import (
    estimate_avf,
    format_avf_report,
    per_group_breakdown,
    per_kernel_breakdown,
    per_opcode_breakdown,
    permanent_avf_by_opcode,
)
from repro.core.campaign import Campaign, CampaignConfig
from repro.core.groups import InstructionGroup
from repro.core.outcomes import Outcome, OutcomeRecord
from repro.core.report import OutcomeTally
from repro.workloads import get_workload


def _tally(sdc=0, due=0, masked=0) -> OutcomeTally:
    tally = OutcomeTally()
    for _ in range(sdc):
        tally.add(OutcomeRecord(Outcome.SDC, "x"))
    for _ in range(due):
        tally.add(OutcomeRecord(Outcome.DUE, "x"))
    for _ in range(masked):
        tally.add(OutcomeRecord(Outcome.MASKED, "x"))
    return tally


class TestEstimate:
    def test_avf_is_complement_of_masked(self):
        estimate = estimate_avf(_tally(sdc=3, due=1, masked=6))
        assert estimate.avf == pytest.approx(0.4)
        assert estimate.sdc_avf == pytest.approx(0.3)
        assert estimate.due_avf == pytest.approx(0.1)

    def test_intervals_bracket_estimate(self):
        estimate = estimate_avf(_tally(sdc=30, masked=70))
        low, high = estimate.avf_interval
        assert low < estimate.avf < high

    def test_empty_tally_rejected(self):
        with pytest.raises(ValueError):
            estimate_avf(OutcomeTally())

    def test_str_rendering(self):
        text = str(estimate_avf(_tally(sdc=5, masked=5)))
        assert "AVF=50.0%" in text and "n=10" in text


class TestBreakdowns:
    @pytest.fixture(scope="class")
    def result(self):
        campaign = Campaign(get_workload("314.omriq"),
                            CampaignConfig(num_transient=15, seed=9))
        return campaign.run_transient()

    def test_per_kernel_totals_sum_to_campaign(self, result):
        breakdown = per_kernel_breakdown(result)
        assert sum(t.total for t in breakdown.values()) == 15
        assert set(breakdown) <= {"computePhiMag", "computeQ"}

    def test_per_opcode_only_injected_runs(self, result):
        breakdown = per_opcode_breakdown(result)
        injected = sum(1 for r in result.results if r.record.injected)
        assert sum(t.total for t in breakdown.values()) == injected

    def test_per_group_uses_base_groups(self, result):
        breakdown = per_group_breakdown(result)
        assert all(
            group in (
                InstructionGroup.G_FP64, InstructionGroup.G_FP32,
                InstructionGroup.G_LD, InstructionGroup.G_PR,
                InstructionGroup.G_OTHERS,
            )
            for group in breakdown
        )

    def test_report_renders(self, result):
        text = format_avf_report("314.omriq", result)
        assert "AVF report for 314.omriq" in text
        assert "per-kernel vulnerability" in text
        assert "computeQ" in text


class TestPermanentAnalysis:
    def test_rows_cover_all_opcodes(self):
        campaign = Campaign(get_workload("360.ilbdc"), CampaignConfig(seed=2))
        campaign.run_golden()
        campaign.run_profile()
        permanent = campaign.run_permanent()
        rows = permanent_avf_by_opcode(permanent)
        assert len(rows) == len(permanent.results)
        # Visible rows with the highest weight come first.
        visible_weights = [w for _, w, visible in rows if visible]
        assert visible_weights == sorted(visible_weights, reverse=True)
