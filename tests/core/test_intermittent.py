"""Intermittent-fault tests (paper §V future work, implemented here)."""

import numpy as np

from repro.core.params import IntermittentParams, PermanentParams
from repro.core.pf_injector import IntermittentInjectorTool
from repro.runner.app import AppContext, Application
from repro.runner.sandbox import run_app
from repro.sass.isa import opcode_info

# The loop counter advances via ISCADD so that corrupting the *IADD*
# accumulator never changes the trip count: the fault site executes a
# deterministic 200 times per thread regardless of activations.
_KERNEL = """
.kernel loopy
.params 2
    S2R R1, SR_TID.X ;
    MOV R2, RZ ;
    MOV R6, RZ ;
    PBK DONE ;
LOOP:
    ISETP.GE P0, R2, 200 ;
@P0 BRK ;
    IADD R6, R6, 1 ;
    ISCADD R2, R2, 1, 0 ;
    BRA LOOP ;
DONE:
    MOV R4, c[0x0][0x0] ;
    ISCADD R5, R1, R4, 2 ;
    STG.32 [R5], R6 ;
    EXIT ;
"""


class LoopApp(Application):
    name = "loop_app"

    def run(self, ctx: AppContext) -> None:
        module = ctx.cuda.load_module(_KERNEL)
        func = ctx.cuda.get_function(module, "loopy")
        out = ctx.cuda.alloc(32, np.uint32)
        ctx.cuda.launch(func, 1, 32, out, 0)
        ctx.write_file("out.bin", out.to_host().tobytes())


def _site() -> PermanentParams:
    return PermanentParams(
        sm_id=0, lane_id=0, bit_mask=1 << 12,
        opcode_id=opcode_info("IADD").opcode_id,
    )


def _run(params: IntermittentParams) -> IntermittentInjectorTool:
    injector = IntermittentInjectorTool(params)
    run_app(LoopApp(), preload=[injector])
    return injector


class TestRandomProcess:
    def test_activation_rate_tracks_probability(self):
        injector = _run(IntermittentParams(_site(), process="random",
                                           activation_probability=0.3, seed=1))
        rate = injector.activations / injector.opportunities
        assert 0.15 < rate < 0.45
        assert injector.opportunities >= 200

    def test_probability_one_matches_permanent(self):
        injector = _run(IntermittentParams(_site(), process="random",
                                           activation_probability=1.0, seed=1))
        assert injector.activations == injector.opportunities

    def test_deterministic_given_seed(self):
        a = _run(IntermittentParams(_site(), process="random",
                                    activation_probability=0.5, seed=7))
        b = _run(IntermittentParams(_site(), process="random",
                                    activation_probability=0.5, seed=7))
        assert a.activations == b.activations

    def test_different_seeds_differ(self):
        a = _run(IntermittentParams(_site(), process="random",
                                    activation_probability=0.5, seed=1))
        b = _run(IntermittentParams(_site(), process="random",
                                    activation_probability=0.5, seed=2))
        assert a.activations != b.activations


class TestBurstyProcess:
    def test_stationary_fraction_approximates_target(self):
        injector = _run(IntermittentParams(_site(), process="bursty",
                                           activation_probability=0.4,
                                           burst_length=8.0, seed=3))
        rate = injector.activations / injector.opportunities
        assert 0.2 < rate < 0.6

    def test_bursts_are_clustered(self):
        """Bursty activations have longer runs than independent coin flips
        at the same rate."""
        site = _site()
        params = IntermittentParams(site, process="bursty",
                                    activation_probability=0.5,
                                    burst_length=16.0, seed=5)
        injector = IntermittentInjectorTool(params)
        # Drive the activation process directly to inspect run lengths.
        sequence = [injector._activate() for _ in range(2000)]
        runs = []
        current = 0
        for active in sequence:
            if active:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        assert np.mean(runs) > 4.0  # i.i.d. at p=0.5 would average 2.0
