"""Parallel campaign-runner tests."""

import pytest

from repro.core.campaign import Campaign, CampaignConfig
from repro.core.parallel import run_transient_parallel
from repro.workloads import get_workload

_CONFIG = dict(num_transient=6, seed=13)


@pytest.mark.slow
class TestParallelCampaign:
    @pytest.fixture(scope="class")
    def serial_and_parallel(self):
        serial = Campaign(
            get_workload("314.omriq"), CampaignConfig(**_CONFIG)
        ).run_transient()
        parallel = run_transient_parallel(
            "314.omriq", CampaignConfig(**_CONFIG), max_workers=2
        )
        return serial, parallel

    def test_same_number_of_results(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert len(parallel.results) == len(serial.results) == 6

    def test_same_sites_selected(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert [r.params for r in parallel.results] == [
            r.params for r in serial.results
        ]

    def test_same_outcomes(self, serial_and_parallel):
        """Determinism across process boundaries: the simulator is seeded,
        so parallel execution must not change a single classification."""
        serial, parallel = serial_and_parallel
        assert [r.outcome.outcome for r in parallel.results] == [
            r.outcome.outcome for r in serial.results
        ]

    def test_tally_matches(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert parallel.tally.fractions() == serial.tally.fractions()

    def test_records_transferred(self, serial_and_parallel):
        _, parallel = serial_and_parallel
        assert all(r.record.injected for r in parallel.results)


@pytest.mark.slow
class TestNonDefaultSandboxPropagation:
    """Regression: workers used to rebuild ``SandboxConfig`` from ``seed``
    and ``instruction_budget`` only, silently dropping ``family``,
    ``num_sms``, ``global_mem_bytes`` and ``extra_env`` — a campaign with a
    non-default sandbox produced different outcomes in parallel than
    sequentially."""

    @pytest.fixture(scope="class")
    def runs(self):
        from repro.runner.sandbox import SandboxConfig

        def config():
            return CampaignConfig(
                num_transient=4,
                seed=13,
                sandbox=SandboxConfig(
                    num_sms=4, family="turing", extra_env={"MODE": "strict"}
                ),
            )

        serial = Campaign(get_workload("314.omriq"), config()).run_transient()
        parallel = run_transient_parallel("314.omriq", config(), max_workers=2)
        return serial, parallel

    def test_same_sites(self, runs):
        serial, parallel = runs
        assert [r.params for r in parallel.results] == [
            r.params for r in serial.results
        ]

    def test_same_records(self, runs):
        """Records carry SM ids; with ``num_sms=4`` dropped, the worker's
        default Volta device (80 SMs) scheduled blocks differently."""
        serial, parallel = runs
        assert [r.record for r in parallel.results] == [
            r.record for r in serial.results
        ]
        injected = [r.record for r in serial.results if r.record.injected]
        assert injected and all(r.sm_id < 4 for r in injected)

    def test_same_tally(self, runs):
        serial, parallel = runs
        assert parallel.tally.fractions() == serial.tally.fractions()
