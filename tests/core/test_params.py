"""Parameter-record tests (Tables II / III serialization and validation)."""

import pytest

from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup
from repro.core.params import IntermittentParams, PermanentParams, TransientParams
from repro.errors import ParamError


def _transient(**overrides):
    defaults = dict(
        group=InstructionGroup.G_GP,
        model=BitFlipModel.FLIP_SINGLE_BIT,
        kernel_name="saxpy",
        kernel_count=2,
        instruction_count=1234,
        dest_reg_selector=0.5,
        bit_pattern_value=0.75,
    )
    defaults.update(overrides)
    return TransientParams(**defaults)


class TestTransientParams:
    def test_roundtrip(self):
        params = _transient()
        assert TransientParams.from_text(params.to_text()) == params

    def test_file_has_seven_values(self):
        lines = [
            line for line in _transient().to_text().splitlines()
            if line.split("#")[0].strip()
        ]
        assert len(lines) == 7

    def test_comments_are_ignored_on_parse(self):
        text = "\n".join(
            ["8 # group", "1", "kern # name", "0", "5", "0.1", "0.2 # trailing"]
        )
        params = TransientParams.from_text(text)
        assert params.kernel_name == "kern"
        assert params.instruction_count == 5

    def test_wrong_line_count_rejected(self):
        with pytest.raises(ParamError, match="7 lines"):
            TransientParams.from_text("1\n2\n3\n")

    def test_malformed_value_blames_its_line(self):
        # line 5 (instruction count) carries a non-integer
        text = "\n".join(["8", "1", "kern", "0", "fifty", "0.1", "0.2"])
        with pytest.raises(ParamError, match="line 5.*instruction count.*fifty"):
            TransientParams.from_text(text)

    def test_line_numbers_skip_comments_and_blanks(self):
        # comments/blanks shift the bad kernel count to physical line 6
        text = "# header\n8\n\n1 # model\nkern\nbad\n5\n0.1\n0.2"
        with pytest.raises(ParamError, match="line 6.*kernel count.*'bad'"):
            TransientParams.from_text(text)

    def test_malformed_enum_blames_line_one(self):
        text = "\n".join(["banana", "1", "kern", "0", "5", "0.1", "0.2"])
        with pytest.raises(ParamError, match="line 1.*arch state id"):
            TransientParams.from_text(text)

    def test_nodest_group_rejected(self):
        with pytest.raises(ParamError, match="no destination"):
            _transient(group=InstructionGroup.G_NODEST)

    @pytest.mark.parametrize("field,value", [
        ("kernel_count", -1),
        ("instruction_count", -5),
        ("dest_reg_selector", 1.0),
        ("bit_pattern_value", -0.1),
        ("kernel_name", ""),
    ])
    def test_invalid_fields(self, field, value):
        with pytest.raises(ParamError):
            _transient(**{field: value})


class TestPermanentParams:
    def test_roundtrip(self):
        params = PermanentParams(sm_id=3, lane_id=17, bit_mask=0x40, opcode_id=12)
        assert PermanentParams.from_text(params.to_text()) == params

    def test_hex_mask_in_text(self):
        assert "0x00000040" in PermanentParams(0, 0, 0x40, 0).to_text()

    def test_malformed_mask_blames_its_line(self):
        with pytest.raises(ParamError, match="line 3.*XOR bit mask.*'0xZZ'"):
            PermanentParams.from_text("0\n0\n0xZZ\n1\n")

    @pytest.mark.parametrize("kwargs", [
        dict(sm_id=-1, lane_id=0, bit_mask=1, opcode_id=0),
        dict(sm_id=0, lane_id=32, bit_mask=1, opcode_id=0),
        dict(sm_id=0, lane_id=0, bit_mask=1 << 32, opcode_id=0),
        dict(sm_id=0, lane_id=0, bit_mask=1, opcode_id=171),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ParamError):
            PermanentParams(**kwargs)

    def test_opcode_id_covers_full_table(self):
        PermanentParams(0, 0, 1, 0)
        PermanentParams(0, 0, 1, 170)  # the last Volta opcode id


class TestIntermittentParams:
    def _permanent(self):
        return PermanentParams(0, 0, 1, 0)

    def test_valid_processes(self):
        IntermittentParams(self._permanent(), process="random")
        IntermittentParams(self._permanent(), process="bursty", burst_length=4.0)

    def test_unknown_process(self):
        with pytest.raises(ParamError, match="activation process"):
            IntermittentParams(self._permanent(), process="chaotic")

    def test_probability_bounds(self):
        with pytest.raises(ParamError):
            IntermittentParams(self._permanent(), activation_probability=0.0)
        with pytest.raises(ParamError):
            IntermittentParams(self._permanent(), activation_probability=1.5)

    def test_burst_length_bounds(self):
        with pytest.raises(ParamError):
            IntermittentParams(self._permanent(), process="bursty", burst_length=0.5)
