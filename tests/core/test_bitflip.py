"""Bit-flip mask tests — the Table II formulas, verbatim."""

import pytest

from repro.core.bitflip import BitFlipModel, apply_mask, compute_mask, corrupt_predicate
from repro.errors import ParamError

M = BitFlipModel


class TestFlipSingleBit:
    def test_formula(self):
        """mask = 0x1 << int(32 * value)."""
        assert compute_mask(M.FLIP_SINGLE_BIT, 0.0, 0) == 1
        assert compute_mask(M.FLIP_SINGLE_BIT, 0.5, 0) == 1 << 16
        assert compute_mask(M.FLIP_SINGLE_BIT, 31.4 / 32, 0) == 1 << 31

    def test_every_bit_reachable(self):
        masks = {
            compute_mask(M.FLIP_SINGLE_BIT, (b + 0.5) / 32, 0) for b in range(32)
        }
        assert masks == {1 << b for b in range(32)}

    def test_single_bit_flips_one_bit(self):
        value = 0xDEADBEEF
        corrupted = apply_mask(M.FLIP_SINGLE_BIT, 0.25, value)
        assert bin(value ^ corrupted).count("1") == 1


class TestFlipTwoBits:
    def test_formula(self):
        """mask = 0x3 << int(31 * value)."""
        assert compute_mask(M.FLIP_TWO_BITS, 0.0, 0) == 3
        assert compute_mask(M.FLIP_TWO_BITS, 30.9 / 31, 0) == 0x3 << 30

    def test_adjacent_bits(self):
        for value in (0.1, 0.4, 0.77):
            mask = compute_mask(M.FLIP_TWO_BITS, value, 0)
            shift = int(31 * value)
            assert mask == 0b11 << shift

    def test_never_wraps_out_of_32_bits(self):
        mask = compute_mask(M.FLIP_TWO_BITS, 0.999999, 0)
        assert mask <= 0xFFFFFFFF


class TestRandomValue:
    def test_formula(self):
        """mask = 0xffffffff * value."""
        assert compute_mask(M.RANDOM_VALUE, 0.0, 0) == 0
        assert compute_mask(M.RANDOM_VALUE, 0.5, 0) == int(0xFFFFFFFF * 0.5)

    def test_old_value_ignored(self):
        assert compute_mask(M.RANDOM_VALUE, 0.3, 0) == compute_mask(
            M.RANDOM_VALUE, 0.3, 0xFFFFFFFF
        )


class TestZeroValue:
    def test_mask_equals_old_value(self):
        """Table II: mask is the original value, so XOR produces 0x0."""
        for old in (0, 1, 0xDEADBEEF, 0xFFFFFFFF):
            assert compute_mask(M.ZERO_VALUE, 0.9, old) == old
            assert apply_mask(M.ZERO_VALUE, 0.9, old) == 0


class TestValidation:
    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_value_out_of_range(self, bad):
        with pytest.raises(ParamError, match=r"\[0, 1\)"):
            compute_mask(M.FLIP_SINGLE_BIT, bad, 0)

    def test_model_ids_match_table_ii(self):
        assert M.FLIP_SINGLE_BIT == 1
        assert M.FLIP_TWO_BITS == 2
        assert M.RANDOM_VALUE == 3
        assert M.ZERO_VALUE == 4


class TestPredicateCorruption:
    def test_flip(self):
        assert corrupt_predicate(True) is False
        assert corrupt_predicate(False) is True
