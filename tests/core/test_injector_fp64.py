"""Transient injection into FP64 instructions: register-pair destinations.

The destination-register selector of Table II exists precisely for
multi-destination cases; for an FP64 pair it chooses between the low and
high 32-bit halves.
"""

import numpy as np

from repro.core.bitflip import BitFlipModel
from repro.core.groups import InstructionGroup
from repro.core.injector import TransientInjectorTool
from repro.core.params import TransientParams
from repro.runner.app import AppContext, Application
from repro.runner.sandbox import run_app

_KERNEL = """
.kernel dwork
.params 1
    S2R R1, SR_TID.X ;
    I2F R2, R1 ;
    F2F.F64.F32 R4, R2 ;
    DADD R6, R4, R4 ;
    F2F.F32.F64 R8, R6 ;
    MOV R9, c[0x0][0x0] ;
    ISCADD R10, R1, R9, 2 ;
    STG.32 [R10], R8 ;
    EXIT ;
"""


class DoubleApp(Application):
    name = "dwork_app"

    def run(self, ctx: AppContext) -> None:
        module = ctx.cuda.load_module(_KERNEL)
        func = ctx.cuda.get_function(module, "dwork")
        out = ctx.cuda.alloc(32, np.float32)
        ctx.cuda.launch(func, 1, 32, out)
        ctx.write_file("out", out.to_host().tobytes())


def _inject(selector: float, bit_value: float, lane: int = 4):
    params = TransientParams(
        group=InstructionGroup.G_FP64,
        model=BitFlipModel.FLIP_SINGLE_BIT,
        kernel_name="dwork",
        kernel_count=0,
        instruction_count=lane,  # the only FP64-group instr is the DADD
        dest_reg_selector=selector,
        bit_pattern_value=bit_value,
    )
    injector = TransientInjectorTool(params)
    artifacts = run_app(DoubleApp(), preload=[injector])
    return injector, np.frombuffer(artifacts.files["out"], np.float32)


class TestFp64PairInjection:
    def test_group_stream_is_dadd_only(self):
        injector, _ = _inject(0.0, 0.1)
        assert injector.record.injected
        assert injector.record.opcode == "DADD"

    def test_selector_low_half(self):
        injector, _ = _inject(0.0, 0.1)
        assert injector.record.dest_index == 6  # low word of the R6:R7 pair

    def test_selector_high_half(self):
        injector, _ = _inject(0.9, 0.1)
        assert injector.record.dest_index == 7  # high word

    def test_high_exponent_bit_blows_up_value(self):
        # Flip bit 30 of the high word: the FP64 exponent field.
        lane = 9
        injector, out = _inject(0.9, 30.5 / 32, lane=lane)
        golden = np.frombuffer(run_app(DoubleApp()).files["out"], np.float32)
        assert injector.record.injected
        assert not np.isclose(out[lane], golden[lane], rtol=1e-3)
        untouched = np.delete(out, lane)
        assert np.allclose(untouched, np.delete(golden, lane))

    def test_low_word_flip_is_tiny(self):
        # Flip bit 0 of the low word: one ULP of the FP64 mantissa tail —
        # invisible after narrowing back to FP32.
        lane = 9
        injector, out = _inject(0.0, 0.001, lane=lane)
        golden = np.frombuffer(run_app(DoubleApp()).files["out"], np.float32)
        assert injector.record.injected
        assert np.allclose(out, golden)
