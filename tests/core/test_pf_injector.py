"""Permanent-injector tests: SM/lane pinning, every-instance corruption."""

import numpy as np

from repro.core.params import PermanentParams
from repro.core.pf_injector import PermanentInjectorTool
from repro.runner.app import AppContext, Application
from repro.runner.sandbox import run_app
from repro.sass.isa import opcode_info

_KERNEL = """
.kernel work
.params 1
    S2R R1, SR_TID.X ;
    S2R R2, SR_CTAID.X ;
    S2R R3, SR_NTID.X ;
    IMAD R4, R2, R3, R1 ;
    IADD R5, R4, 100 ;
    MOV R6, c[0x0][0x0] ;
    ISCADD R7, R4, R6, 2 ;
    STG.32 [R7], R5 ;
    EXIT ;
"""

_IADD_ID = opcode_info("IADD").opcode_id
_DADD_ID = opcode_info("DADD").opcode_id


class WorkApp(Application):
    name = "work_app"

    def __init__(self, blocks=4, launches=2):
        self.blocks = blocks
        self.launches = launches

    def run(self, ctx: AppContext) -> None:
        module = ctx.cuda.load_module(_KERNEL)
        func = ctx.cuda.get_function(module, "work")
        out = ctx.cuda.alloc(32 * self.blocks, np.uint32)
        for _ in range(self.launches):
            ctx.cuda.launch(func, self.blocks, 32, out)
        ctx.write_file("out.bin", out.to_host().tobytes())


def _run(params, app=None):
    app = app or WorkApp()
    injector = PermanentInjectorTool(params)
    artifacts = run_app(app, preload=[injector])
    out = np.frombuffer(artifacts.files["out.bin"], dtype=np.uint32)
    return injector, out


def _golden(app=None):
    artifacts = run_app(app or WorkApp())
    return np.frombuffer(artifacts.files["out.bin"], dtype=np.uint32)


class TestPinning:
    def test_only_pinned_sm_and_lane_corrupted(self):
        # 4 blocks on 4 SMs (round-robin): block b runs on SM b.
        params = PermanentParams(sm_id=2, lane_id=9, bit_mask=1 << 4, opcode_id=_IADD_ID)
        injector, out = _run(params)
        golden = _golden()
        diff = np.nonzero(out != golden)[0]
        # Exactly one element (block 2, lane 9) differs.
        assert list(diff) == [2 * 32 + 9]
        assert out[2 * 32 + 9] == golden[2 * 32 + 9] ^ (1 << 4)

    def test_idle_sm_never_activates(self):
        params = PermanentParams(sm_id=3, lane_id=0, bit_mask=1, opcode_id=_IADD_ID)
        app = WorkApp(blocks=2)  # only SMs 0 and 1 populated
        injector, out = _run(params, app)
        assert injector.activations == 0
        assert (out == _golden(app)).all()

    def test_inactive_lane_never_activates(self):
        class TinyApp(WorkApp):
            def run(self, ctx):
                module = ctx.cuda.load_module(_KERNEL)
                func = ctx.cuda.get_function(module, "work")
                out = ctx.cuda.alloc(32, np.uint32)
                ctx.cuda.launch(func, 1, 8, out)  # lanes 8..31 invalid
                ctx.write_file("out.bin", out.to_host().tobytes())

        params = PermanentParams(sm_id=0, lane_id=20, bit_mask=1, opcode_id=_IADD_ID)
        injector, _ = _run(params, TinyApp())
        assert injector.activations == 0


class TestEveryInstance:
    def test_activates_once_per_dynamic_instance(self):
        # IADD executes once per launch on the pinned (SM, lane): 2 launches.
        params = PermanentParams(sm_id=0, lane_id=0, bit_mask=1, opcode_id=_IADD_ID)
        injector, _ = _run(params, WorkApp(blocks=4, launches=2))
        assert injector.activations == 2
        assert injector.opportunities == 2

    def test_same_mask_every_time(self):
        """Table III: all instances corrupted with the same XOR mask, so an
        even number of activations on an idempotent value is NOT the same
        as zero — each dynamic instance gets a fresh XOR of its result."""
        params = PermanentParams(sm_id=1, lane_id=3, bit_mask=1 << 7, opcode_id=_IADD_ID)
        injector, out = _run(params, WorkApp(blocks=4, launches=3))
        golden = _golden(WorkApp(blocks=4, launches=3))
        assert injector.activations == 3
        assert out[35] == golden[35] ^ (1 << 7)

    def test_unused_opcode_never_activates(self):
        params = PermanentParams(sm_id=0, lane_id=0, bit_mask=1, opcode_id=_DADD_ID)
        injector, out = _run(params)
        assert injector.activations == 0
        assert (out == _golden()).all()

    def test_multi_opcode_extension(self):
        """Paper §V: one physical fault affecting multiple opcodes."""
        imad_id = opcode_info("IMAD").opcode_id
        params = PermanentParams(sm_id=0, lane_id=0, bit_mask=1, opcode_id=_IADD_ID)
        injector = PermanentInjectorTool(params, extra_opcode_ids=[imad_id])
        run_app(WorkApp(blocks=1, launches=1), preload=[injector])
        # Both the IMAD and the IADD on lane 0 activate.
        assert injector.activations == 2

    def test_every_kernel_instrumented(self):
        """Permanent injection instruments the whole program — the reason
        the paper's Figure 4 shows higher overhead than transient."""
        params = PermanentParams(sm_id=0, lane_id=0, bit_mask=1, opcode_id=_IADD_ID)
        injector, _ = _run(params, WorkApp(launches=3))
        assert injector.opportunities == 3  # every launch observed
