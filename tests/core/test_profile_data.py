"""Profile data-structure tests."""

import pytest

from repro.core.groups import InstructionGroup
from repro.core.profile_data import KernelProfile, ProgramProfile
from repro.errors import ProfileError


def _profile() -> ProgramProfile:
    profile = ProgramProfile()
    profile.append(KernelProfile("a", 0, {"FADD": 100, "LDG": 50, "EXIT": 32}))
    profile.append(KernelProfile("b", 0, {"IADD": 10, "FSETP": 5}))
    profile.append(KernelProfile("a", 1, {"FADD": 100, "LDG": 50, "EXIT": 32}))
    return profile


class TestKernelProfile:
    def test_add_accumulates(self):
        kp = KernelProfile("k", 0)
        kp.add("FADD", 10)
        kp.add("FADD", 5)
        assert kp.counts["FADD"] == 15

    def test_add_zero_is_noop(self):
        kp = KernelProfile("k", 0)
        kp.add("FADD", 0)
        assert "FADD" not in kp.counts

    def test_total(self):
        assert _profile().kernels[0].total() == 182

    def test_group_count(self):
        kp = _profile().kernels[0]
        assert kp.group_count(InstructionGroup.G_FP32) == 100
        assert kp.group_count(InstructionGroup.G_LD) == 50
        assert kp.group_count(InstructionGroup.G_NODEST) == 32
        assert kp.group_count(InstructionGroup.G_GP) == 150

    def test_line_roundtrip(self):
        kp = _profile().kernels[1]
        again = KernelProfile.from_line(kp.to_line())
        assert again.kernel_name == "b"
        assert again.counts == kp.counts
        assert not again.approximated

    def test_approximated_flag_roundtrip(self):
        kp = KernelProfile("k", 3, {"NOP": 1}, approximated=True)
        assert KernelProfile.from_line(kp.to_line()).approximated

    def test_malformed_line(self):
        with pytest.raises(ProfileError, match="malformed"):
            KernelProfile.from_line("just-one-field")

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ProfileError, match="unknown opcode"):
            KernelProfile.from_line("k;0;=;FROB:3")


class TestProgramProfile:
    def test_totals(self):
        profile = _profile()
        assert profile.total_count() == 182 * 2 + 15
        assert profile.total_count(InstructionGroup.G_FP32) == 200
        assert profile.total_count(InstructionGroup.G_PR) == 5

    def test_kernel_counts(self):
        profile = _profile()
        assert profile.num_dynamic_kernels == 3
        assert profile.num_static_kernels == 2

    def test_executed_opcodes(self):
        assert _profile().executed_opcodes() == {
            "FADD", "LDG", "EXIT", "IADD", "FSETP",
        }

    def test_opcode_count_sums_across_kernels(self):
        assert _profile().opcode_count("FADD") == 200
        assert _profile().opcode_count("IMAD") == 0

    def test_text_roundtrip(self):
        profile = _profile()
        again = ProgramProfile.from_text(profile.to_text())
        assert again.num_dynamic_kernels == 3
        assert again.total_count() == profile.total_count()
        assert [kp.invocation for kp in again.kernels] == [0, 0, 1]
