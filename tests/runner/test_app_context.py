"""AppContext (process environment) behaviour tests."""

import pytest

from repro.cuda.runtime import CudaRuntime
from repro.gpusim import Device
from repro.runner.app import AppContext, AppExit


@pytest.fixture
def ctx():
    return AppContext(CudaRuntime(Device(num_sms=2)), seed=5)


class TestStdout:
    def test_print_joins_with_spaces(self, ctx):
        ctx.print("a", 1, 2.5)
        assert ctx.stdout == "a 1 2.5\n"

    def test_multiple_lines(self, ctx):
        ctx.print("first")
        ctx.print("second")
        assert ctx.stdout == "first\nsecond\n"

    def test_empty_stdout_has_no_trailing_newline(self, ctx):
        assert ctx.stdout == ""


class TestFiles:
    def test_write_str_encodes(self, ctx):
        ctx.write_file("a.txt", "hello")
        assert ctx.files["a.txt"] == b"hello"

    def test_write_bytes_passthrough(self, ctx):
        ctx.write_file("b.bin", b"\x00\x01")
        assert ctx.files["b.bin"] == b"\x00\x01"

    def test_write_bytearray(self, ctx):
        ctx.write_file("c.bin", bytearray([1, 2]))
        assert ctx.files["c.bin"] == b"\x01\x02"

    def test_overwrite(self, ctx):
        ctx.write_file("d", "one")
        ctx.write_file("d", "two")
        assert ctx.files["d"] == b"two"


class TestExit:
    def test_exit_raises_app_exit(self, ctx):
        with pytest.raises(AppExit) as excinfo:
            ctx.exit(42)
        assert excinfo.value.code == 42


class TestRng:
    def test_seeded_and_salted(self):
        a = AppContext(CudaRuntime(Device(num_sms=1)), seed=5)
        b = AppContext(CudaRuntime(Device(num_sms=1)), seed=5)
        assert a.rng().random() == b.rng().random()
        assert a.rng("other").random() != b.rng("input").random()

    def test_different_seeds(self):
        a = AppContext(CudaRuntime(Device(num_sms=1)), seed=5)
        b = AppContext(CudaRuntime(Device(num_sms=1)), seed=6)
        assert a.rng().random() != b.rng().random()

    def test_rng_is_fresh_each_call(self, ctx):
        # Each rng() call returns an independent generator from the same
        # seed, so input generation is order-independent.
        assert ctx.rng().random() == ctx.rng().random()
