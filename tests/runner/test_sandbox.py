"""Sandbox tests: artifact capture for every Table V signal."""

import pytest

from repro.runner.app import AppContext, Application
from repro.runner.artifacts import RunArtifacts
from repro.runner.golden import GoldenError, capture_golden, hang_budget
from repro.runner.sandbox import EXIT_CRASH, EXIT_TIMEOUT, SandboxConfig, run_app

_HANG = """
.kernel spin
LOOP:
    BRA LOOP ;
    EXIT ;
"""

_BAD = """
.kernel bad
    MOV32I R1, 0x6 ;
    LDG.32 R0, [R1] ;
    EXIT ;
"""


class HelloApp(Application):
    name = "hello"

    def run(self, ctx: AppContext) -> None:
        ctx.print("hello", 42)
        ctx.write_file("data.bin", b"\x01\x02")


class HangApp(Application):
    name = "hang"

    def run(self, ctx: AppContext) -> None:
        module = ctx.cuda.load_module(_HANG)
        ctx.cuda.launch(ctx.cuda.get_function(module, "spin"), 1, 32)


class FaultyKernelApp(Application):
    name = "faulty"

    def __init__(self, check_errors: bool):
        self.check_errors = check_errors

    def run(self, ctx: AppContext) -> None:
        module = ctx.cuda.load_module(_BAD)
        ctx.cuda.launch(ctx.cuda.get_function(module, "bad"), 1, 1)
        ctx.print("done")
        if self.check_errors and ctx.cuda.synchronize() != 0:
            ctx.exit(1)


class CrashApp(Application):
    name = "crash"

    def run(self, ctx: AppContext) -> None:
        raise ValueError("segfault stand-in")


class TestCapture:
    def test_stdout_and_files(self):
        artifacts = run_app(HelloApp())
        assert artifacts.stdout == "hello 42\n"
        assert artifacts.files == {"data.bin": b"\x01\x02"}
        assert artifacts.exit_status == 0
        assert artifacts.wall_time > 0

    def test_hang_detected(self):
        artifacts = run_app(HangApp(), config=SandboxConfig(instruction_budget=5000))
        assert artifacts.timed_out
        assert artifacts.exit_status == EXIT_TIMEOUT

    def test_crash_detected(self):
        artifacts = run_app(CrashApp())
        assert artifacts.crashed
        assert "ValueError" in artifacts.crash_reason
        assert artifacts.exit_status == EXIT_CRASH

    def test_explicit_exit_code(self):
        class ExitApp(Application):
            name = "exiter"

            def run(self, ctx):
                ctx.exit(7)

        assert run_app(ExitApp()).exit_status == 7

    def test_unchecked_kernel_fault_is_silent(self):
        """Paper §IV-A: the GPU detected the error, the CPU never checked."""
        artifacts = run_app(FaultyKernelApp(check_errors=False))
        assert artifacts.exit_status == 0
        assert artifacts.cuda_errors  # ...but the anomaly is on record
        assert artifacts.dmesg

    def test_checked_kernel_fault_exits(self):
        artifacts = run_app(FaultyKernelApp(check_errors=True))
        assert artifacts.exit_status == 1

    def test_fresh_device_per_run(self):
        run_app(FaultyKernelApp(check_errors=False))
        clean = run_app(HelloApp())
        assert not clean.cuda_errors and not clean.dmesg

    def test_instruction_count_recorded(self):
        artifacts = run_app(HangApp(), config=SandboxConfig(instruction_budget=500))
        assert artifacts.instructions_executed >= 500

    def test_summary_strings(self):
        artifacts = run_app(HangApp(), config=SandboxConfig(instruction_budget=500))
        assert "TIMEOUT" in artifacts.summary()
        assert "clean" in run_app(HelloApp()).summary()


class TestSeeding:
    def test_seed_reaches_app(self):
        class SeedApp(Application):
            name = "seeded"

            def run(self, ctx):
                ctx.print(float(ctx.rng().random()))

        a = run_app(SeedApp(), config=SandboxConfig(seed=1)).stdout
        b = run_app(SeedApp(), config=SandboxConfig(seed=1)).stdout
        c = run_app(SeedApp(), config=SandboxConfig(seed=2)).stdout
        assert a == b
        assert a != c

    def test_extra_env_reaches_app(self):
        class EnvApp(Application):
            name = "env"

            def run(self, ctx):
                ctx.print(ctx.getenv("TOLERANCE", "default"))

        loose = run_app(
            EnvApp(), config=SandboxConfig(extra_env={"TOLERANCE": "loose"})
        )
        plain = run_app(EnvApp(), config=SandboxConfig())
        assert loose.stdout == "loose\n"
        assert plain.stdout == "default\n"


class TestConfigCloning:
    def test_clone_copies_every_field(self):
        config = SandboxConfig(
            seed=7, family="turing", num_sms=4,
            global_mem_bytes=1 << 20, extra_env={"A": "1"},
        )
        copy = config.clone()
        assert copy == config
        copy.extra_env["B"] = "2"
        assert "B" not in config.extra_env  # deep-copied env

    def test_clone_applies_overrides(self):
        config = SandboxConfig(seed=7)
        copy = config.clone(seed=9, family="turing")
        assert (copy.seed, copy.family) == (9, "turing")
        assert (config.seed, config.family) == (7, "volta")

    def test_clone_rejects_unknown_fields(self):
        # A misspelled override used to setattr a dead attribute silently,
        # leaving the caller on the default configuration.
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="instruction_budge"):
            SandboxConfig().clone(instruction_budge=5)
        with pytest.raises(ReproError, match="valid fields"):
            SandboxConfig().clone(extra_environment={"A": "1"})

    def test_spec_round_trips_through_pickle(self):
        import pickle

        config = SandboxConfig(
            seed=7, family="turing", num_sms=4,
            global_mem_bytes=1 << 20, extra_env={"A": "1", "B": "2"},
        )
        spec = config.spec(instruction_budget=123)
        thawed = pickle.loads(pickle.dumps(spec)).config()
        assert thawed.family == "turing"
        assert thawed.num_sms == 4
        assert thawed.global_mem_bytes == 1 << 20
        assert thawed.extra_env == {"A": "1", "B": "2"}
        assert thawed.instruction_budget == 123


class TestGoldenHelpers:
    def test_capture_golden_happy_path(self):
        golden = capture_golden(HelloApp())
        assert golden.stdout == "hello 42\n"

    def test_capture_golden_rejects_anomalies(self):
        with pytest.raises(GoldenError, match="anomalies"):
            capture_golden(FaultyKernelApp(check_errors=False))

    def test_capture_golden_rejects_crash(self):
        with pytest.raises(GoldenError, match="crashed"):
            capture_golden(CrashApp())

    def test_hang_budget_scales_from_golden(self):
        golden = RunArtifacts(instructions_executed=50_000)
        assert hang_budget(golden, factor=10) == 500_000

    def test_hang_budget_floor(self):
        golden = RunArtifacts(instructions_executed=10)
        assert hang_budget(golden, floor=100_000) == 100_000
