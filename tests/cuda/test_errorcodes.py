"""CUDA error-code semantics tests."""

from repro.cuda.errorcodes import CudaError


class TestCudaError:
    def test_success_is_zero(self):
        assert CudaError.SUCCESS == 0
        assert not CudaError.SUCCESS.is_failure

    def test_failures_flagged(self):
        for code in CudaError:
            if code is not CudaError.SUCCESS:
                assert code.is_failure, code

    def test_real_cuda_numbers(self):
        """The codes workloads might hard-code match the real toolkit."""
        assert CudaError.ERROR_ILLEGAL_ADDRESS == 700
        assert CudaError.ERROR_MISALIGNED_ADDRESS == 716
        assert CudaError.ERROR_LAUNCH_TIMEOUT == 702

    def test_truthiness_matches_c_convention(self):
        # `if cudaMemcpy(...)` in C fires on failure; IntEnum preserves it.
        assert not CudaError.SUCCESS
        assert CudaError.ERROR_ILLEGAL_ADDRESS
