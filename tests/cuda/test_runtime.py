"""Runtime-layer tests: DeviceArray, argument conversion, libraries."""

import numpy as np
import pytest

from repro.cuda.errorcodes import CudaError
from repro.cuda.module_loader import LibraryRegistry
from repro.cuda.runtime import CudaRuntime
from repro.gpusim import Device

_SAXPY = """
.kernel saxpy
.params 4
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x4] ;
    ISCADD R3, R1, R2, 2 ;
    LDG.32 R4, [R3] ;
    MOV R5, c[0x0][0xc] ;
    FFMA R6, R4, R5, R4 ;
    MOV R7, c[0x0][0x8] ;
    ISCADD R8, R1, R7, 2 ;
    STG.32 [R8], R6 ;
    EXIT ;
"""


@pytest.fixture
def runtime():
    return CudaRuntime(Device(num_sms=2, global_mem_bytes=1 << 20))


class TestDeviceArray:
    def test_roundtrip(self, runtime):
        host = np.arange(10, dtype=np.float32)
        array = runtime.to_device(host)
        assert (array.to_host() == host).all()

    def test_shape_preserved(self, runtime):
        host = np.ones((4, 8), dtype=np.float32)
        assert runtime.to_device(host).to_host().shape == (4, 8)

    def test_dtype_preserved(self, runtime):
        host = np.arange(6, dtype=np.uint32)
        assert runtime.to_device(host).to_host().dtype == np.uint32

    def test_size_mismatch_rejected(self, runtime):
        array = runtime.alloc(8, np.float32)
        with pytest.raises(ValueError, match="elements"):
            array.from_host(np.zeros(9, np.float32))

    def test_free(self, runtime):
        array = runtime.alloc(8)
        array.free()  # freeing twice would raise; once is clean


class TestLaunchArguments:
    def test_float_args_become_f32_bits(self, runtime):
        module = runtime.load_module(_SAXPY)
        func = runtime.get_function(module, "saxpy")
        x = runtime.to_device(np.ones(32, np.float32))
        y = runtime.alloc(32, np.float32)
        runtime.launch(func, 1, 32, 32, x, y, 2.0)
        assert np.allclose(y.to_host(), 3.0)

    def test_device_array_becomes_address(self, runtime):
        module = runtime.load_module(_SAXPY)
        func = runtime.get_function(module, "saxpy")
        x = runtime.to_device(np.ones(32, np.float32))
        y = runtime.alloc(32, np.float32)
        # Passing the raw address must behave identically.
        runtime.launch(func, 1, 32, 32, x.address, y.address, 1.0)
        assert np.allclose(y.to_host(), 2.0)

    def test_unsupported_arg_rejected(self, runtime):
        module = runtime.load_module(_SAXPY)
        func = runtime.get_function(module, "saxpy")
        with pytest.raises(TypeError, match="unsupported"):
            runtime.launch(func, 1, 32, "not-an-arg")

    def test_numpy_scalars_accepted(self, runtime):
        module = runtime.load_module(_SAXPY)
        func = runtime.get_function(module, "saxpy")
        x = runtime.to_device(np.ones(32, np.float32))
        y = runtime.alloc(32, np.float32)
        result = runtime.launch(
            func, 1, 32, np.uint32(32), x, y, np.float32(0.5)
        )
        assert result is CudaError.SUCCESS
        assert np.allclose(y.to_host(), 1.5)


class TestLibraries:
    def test_local_registration_and_load(self, runtime):
        runtime.libraries.register("libfoo.so", _SAXPY)
        module = runtime.load_library("libfoo.so")
        assert module.is_library
        assert "saxpy" in module.functions

    def test_global_registration(self, runtime):
        try:
            LibraryRegistry.register_global("libglobal.so", _SAXPY)
            module = runtime.load_library("libglobal.so")
            assert module.is_library
        finally:
            LibraryRegistry.clear_global()

    def test_local_shadows_global(self, runtime):
        try:
            LibraryRegistry.register_global("lib.so", ".kernel g\nEXIT ;")
            runtime.libraries.register("lib.so", ".kernel l\nEXIT ;")
            module = runtime.load_library("lib.so")
            assert "l" in module.functions
        finally:
            LibraryRegistry.clear_global()

    def test_missing_library(self, runtime):
        with pytest.raises(KeyError, match="not found"):
            runtime.load_library("libmissing.so")
