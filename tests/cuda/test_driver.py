"""Driver API tests: modules, memory, launches, the sticky-error model."""

import numpy as np
import pytest

from repro.cuda.driver import CudaDriver, CudaEvent
from repro.cuda.errorcodes import CudaError
from repro.sass import assemble, encode_module

_VADD = """
.kernel vadd
.params 3
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    ISCADD R3, R1, R2, 2 ;
    LDG.32 R4, [R3] ;
    MOV R5, c[0x0][0x4] ;
    ISCADD R6, R1, R5, 2 ;
    LDG.32 R7, [R6] ;
    IADD R8, R4, R7 ;
    MOV R9, c[0x0][0x8] ;
    ISCADD R10, R1, R9, 2 ;
    STG.32 [R10], R8 ;
    EXIT ;
"""

_BAD_LOAD = """
.kernel bad
    MOV32I R1, 0x2 ;
    LDG.32 R0, [R1] ;
    EXIT ;
"""


@pytest.fixture
def driver(device):
    return CudaDriver(device)


class TestModules:
    def test_load_from_text(self, driver):
        module = driver.cuModuleLoadData(_VADD, name="m")
        assert "vadd" in module.functions

    def test_load_from_binary(self, driver):
        blob = encode_module(assemble(_VADD))
        module = driver.cuModuleLoadData(blob, name="bin")
        assert driver.cuModuleGetFunction(module, "vadd").name == "vadd"

    def test_get_function_missing(self, driver):
        module = driver.cuModuleLoadData(_VADD)
        with pytest.raises(KeyError, match="available"):
            driver.cuModuleGetFunction(module, "nope")


class TestMemoryAndLaunch:
    def test_end_to_end(self, driver):
        module = driver.cuModuleLoadData(_VADD)
        func = driver.cuModuleGetFunction(module, "vadd")
        a = driver.cuMemAlloc(4 * 32)
        b = driver.cuMemAlloc(4 * 32)
        c = driver.cuMemAlloc(4 * 32)
        driver.cuMemcpyHtoD(a, np.full(32, 2, np.uint32).tobytes())
        driver.cuMemcpyHtoD(b, np.full(32, 3, np.uint32).tobytes())
        result = driver.cuLaunchKernel(func, 1, 32, [a, b, c])
        assert result is CudaError.SUCCESS
        out = np.frombuffer(driver.cuMemcpyDtoH(c, 4 * 32), np.uint32)
        assert (out == 5).all()

    def test_mem_free(self, driver):
        address = driver.cuMemAlloc(256)
        driver.cuMemFree(address)  # no error

    def test_invalid_config_is_error_code(self, driver):
        module = driver.cuModuleLoadData(_VADD)
        func = driver.cuModuleGetFunction(module, "vadd")
        result = driver.cuLaunchKernel(func, 1, 4096, [0, 0, 0])
        assert result is CudaError.ERROR_INVALID_CONFIGURATION


class TestStickyErrors:
    def test_misaligned_access(self, driver):
        module = driver.cuModuleLoadData(_BAD_LOAD)
        func = driver.cuModuleGetFunction(module, "bad")
        result = driver.cuLaunchKernel(func, 1, 1, [])
        assert result is CudaError.ERROR_MISALIGNED_ADDRESS
        assert driver.cuCtxSynchronize() is CudaError.ERROR_MISALIGNED_ADDRESS

    def test_get_last_error_clears(self, driver):
        module = driver.cuModuleLoadData(_BAD_LOAD)
        func = driver.cuModuleGetFunction(module, "bad")
        driver.cuLaunchKernel(func, 1, 1, [])
        assert driver.cuGetLastError() is CudaError.ERROR_MISALIGNED_ADDRESS
        assert driver.cuGetLastError() is CudaError.SUCCESS

    def test_process_survives_kernel_fault(self, driver):
        """Paper §IV-A: a GPU fault kills the kernel, not the process."""
        bad_module = driver.cuModuleLoadData(_BAD_LOAD)
        good_module = driver.cuModuleLoadData(_VADD)
        bad = driver.cuModuleGetFunction(bad_module, "bad")
        good = driver.cuModuleGetFunction(good_module, "vadd")
        driver.cuLaunchKernel(bad, 1, 1, [])
        a = driver.cuMemAlloc(128)
        b = driver.cuMemAlloc(128)
        c = driver.cuMemAlloc(128)
        driver.cuMemcpyHtoD(a, b"\x01" * 128)
        driver.cuMemcpyHtoD(b, b"\x01" * 128)
        assert driver.cuLaunchKernel(good, 1, 32, [a, b, c]) is CudaError.SUCCESS

    def test_error_log_accumulates(self, driver):
        module = driver.cuModuleLoadData(_BAD_LOAD)
        func = driver.cuModuleGetFunction(module, "bad")
        driver.cuLaunchKernel(func, 1, 1, [])
        driver.cuLaunchKernel(func, 1, 1, [])
        assert len(driver.error_log) == 2

    def test_dmesg_xid_recorded(self, driver, device):
        module = driver.cuModuleLoadData(_BAD_LOAD)
        func = driver.cuModuleGetFunction(module, "bad")
        driver.cuLaunchKernel(func, 1, 1, [])
        assert any("Xid" in line for line in device.dmesg)


class TestEventDispatch:
    def test_events_fire_in_order(self, device):
        events = []

        class Spy:
            def dispatch_event(self, driver, event, payload, is_exit):
                events.append((event, is_exit))

            def active_hooks(self, func):
                return None

        driver = CudaDriver(device, interceptor=Spy())
        module = driver.cuModuleLoadData(_VADD)
        func = driver.cuModuleGetFunction(module, "vadd")
        a = driver.cuMemAlloc(128)
        driver.cuLaunchKernel(func, 1, 32, [a, a, a])
        kinds = [e for e, _ in events]
        assert kinds[0] is CudaEvent.CTX_CREATE
        assert CudaEvent.MODULE_LOAD in kinds
        launch_events = [x for x in events if x[0] is CudaEvent.LAUNCH_KERNEL]
        assert launch_events == [
            (CudaEvent.LAUNCH_KERNEL, False),
            (CudaEvent.LAUNCH_KERNEL, True),
        ]
