"""NVBit runtime tests: inspection, insertion, selective enable, JIT cache."""

import numpy as np

from repro.cuda.driver import CudaEvent
from repro.cuda.runtime import CudaRuntime
from repro.gpusim import Device
from repro.nvbit import IPoint, NVBitRuntime, NVBitTool

_KERNEL = """
.kernel work
.params 2
    S2R R1, SR_TID.X ;
    MOV R2, c[0x0][0x0] ;
    ISCADD R3, R1, R2, 2 ;
    LDG.32 R4, [R3] ;
    IADD R5, R4, 1 ;
    MOV R6, c[0x0][0x4] ;
    ISCADD R7, R1, R6, 2 ;
    STG.32 [R7], R5 ;
    EXIT ;
"""


class CountAllTool(NVBitTool):
    """Instruments everything on first launch; counts executed threads."""

    def __init__(self, enable: bool = True):
        super().__init__()
        self.enable = enable
        self.total = 0
        self.seen_events = []
        self._instrumented = set()

    def nvbit_at_cuda_event(self, driver, event, payload, is_exit):
        self.seen_events.append((event, is_exit))
        if event is CudaEvent.LAUNCH_KERNEL and not is_exit:
            if payload.func not in self._instrumented:
                self._instrumented.add(payload.func)
                for instr in self.nvbit.get_instrs(payload.func):
                    instr.insert_call(self._count, IPoint.AFTER)
            self.nvbit.enable_instrumented(payload.func, self.enable)

    def _count(self, site):
        self.total += site.num_executed


def _make_runtime(tools):
    return CudaRuntime(Device(num_sms=2, global_mem_bytes=1 << 20),
                       interceptor=NVBitRuntime(tools))


def _run_work(runtime, launches=1):
    module = runtime.load_module(_KERNEL)
    func = runtime.get_function(module, "work")
    x = runtime.to_device(np.zeros(32, np.uint32))
    y = runtime.alloc(32, np.uint32)
    for _ in range(launches):
        runtime.launch(func, 1, 32, x, y)
    return func


class TestInstrumentation:
    def test_counts_all_executed_threads(self):
        tool = CountAllTool()
        _run_work(_make_runtime([tool]))
        assert tool.total == 9 * 32  # 9 instructions, 32 threads

    def test_disabled_instrumentation_runs_clean(self):
        tool = CountAllTool(enable=False)
        _run_work(_make_runtime([tool]))
        assert tool.total == 0

    def test_enable_flag_toggles_between_launches(self):
        class Toggler(CountAllTool):
            launches = 0

            def nvbit_at_cuda_event(self, driver, event, payload, is_exit):
                if event is CudaEvent.LAUNCH_KERNEL and not is_exit:
                    # Instrument even-numbered launches only.
                    self.enable = self.launches % 2 == 0
                    self.launches += 1
                super().nvbit_at_cuda_event(driver, event, payload, is_exit)

        tool = Toggler()
        _run_work(_make_runtime([tool]), launches=4)
        assert tool.total == 2 * 9 * 32  # launches 0 and 2 instrumented

    def test_before_and_after_ordering(self):
        order = []

        class OrderTool(NVBitTool):
            def nvbit_at_cuda_event(self, driver, event, payload, is_exit):
                if event is CudaEvent.LAUNCH_KERNEL and not is_exit:
                    instr = self.nvbit.get_instrs(payload.func)[4]  # the IADD
                    if not instr.before_calls:
                        instr.insert_call(
                            lambda s: order.append(("before", s.read_reg(0, 5))),
                            IPoint.BEFORE,
                        )
                        instr.insert_call(
                            lambda s: order.append(("after", s.read_reg(0, 5))),
                            IPoint.AFTER,
                        )
                    self.nvbit.enable_instrumented(payload.func, True)

        _run_work(_make_runtime([OrderTool()]))
        assert order[0][0] == "before" and order[1][0] == "after"
        # R5 is written by the IADD: before sees 0, after sees 1.
        assert order[0][1] == 0 and order[1][1] == 1

    def test_multiple_tools_all_fire(self):
        tool_a, tool_b = CountAllTool(), CountAllTool()
        _run_work(_make_runtime([tool_a, tool_b]))
        assert tool_a.total == tool_b.total == 9 * 32

    def test_tool_lifecycle_callbacks(self):
        calls = []

        class Lifecycle(NVBitTool):
            def nvbit_at_init(self):
                calls.append("init")

            def nvbit_at_term(self):
                calls.append("term")

        nvbit = NVBitRuntime([Lifecycle()])
        assert calls == ["init"]
        nvbit.terminate()
        assert calls == ["init", "term"]


class TestJitCache:
    def test_compiled_once_when_unchanged(self):
        tool = CountAllTool()
        runtime = _make_runtime([tool])
        _run_work(runtime, launches=5)
        assert runtime.driver.interceptor.jit_compile_count == 1

    def test_recompiles_after_new_insertion(self):
        class TwoPhase(CountAllTool):
            extra_added = False

            def nvbit_at_cuda_event(self, driver, event, payload, is_exit):
                super().nvbit_at_cuda_event(driver, event, payload, is_exit)
                if (
                    event is CudaEvent.LAUNCH_KERNEL
                    and is_exit
                    and not self.extra_added
                ):
                    self.extra_added = True
                    self.nvbit.get_instrs(payload.func)[0].insert_call(
                        self._count, IPoint.BEFORE
                    )

        tool = TwoPhase()
        runtime = _make_runtime([tool])
        _run_work(runtime, launches=2)
        assert runtime.driver.interceptor.jit_compile_count == 2

    def test_remove_calls(self):
        tool = CountAllTool()
        runtime = _make_runtime([tool])
        func = _run_work(runtime)
        first_total = tool.total
        # Silence the tool so it cannot re-insert, then strip instrumentation.
        tool.nvbit_at_cuda_event = lambda *args: None
        for instr in runtime.driver.interceptor.get_instrs(func):
            instr.remove_calls()
        x = runtime.to_device(np.zeros(32, np.uint32))
        runtime.launch(func, 1, 32, x, x)
        assert tool.total == first_total  # nothing counted after removal


class TestInstrInspection:
    def test_opcode_views(self):
        runtime = _make_runtime([])
        module = runtime.load_module(".kernel k\nISETP.GE.U32 P0, R1, R2 ;\nEXIT ;")
        func = runtime.get_function(module, "k")
        instr = runtime.driver.interceptor.get_instrs(func)[0]
        assert instr.get_opcode() == "ISETP.GE.U32"
        assert instr.get_opcode_short() == "ISETP"
        assert instr.get_idx() == 0
        assert instr.get_dest_pred() == 0
        assert instr.has_dest()
        assert instr.get_src_regs() == (1, 2)

    def test_dest_regs_fp64_pair(self):
        runtime = _make_runtime([])
        module = runtime.load_module(".kernel k\nDADD R4, R0, R2 ;\nEXIT ;")
        func = runtime.get_function(module, "k")
        instr = runtime.driver.interceptor.get_instrs(func)[0]
        assert instr.get_dest_regs() == (4, 5)

    def test_guard_and_sass_text(self):
        runtime = _make_runtime([])
        module = runtime.load_module(".kernel k\n@!P1 MOV R0, R1 ;\nEXIT ;")
        func = runtime.get_function(module, "k")
        instr = runtime.driver.interceptor.get_instrs(func)[0]
        assert instr.has_guard_pred()
        assert "@!P1" in instr.get_sass()
