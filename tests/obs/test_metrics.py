"""Metrics-registry tests: counters, gauges, histogram bucketing, renderers."""

import json

import pytest

from repro.obs import DEFAULT_BUCKETS, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("runs")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2.0

    def test_set_max_keeps_high_water(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set_max(3)
        gauge.set_max(1)
        gauge.set_max(7)
        assert gauge.value == 7.0


class TestHistogram:
    def test_bucketing_is_cumulative_upper_bound(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 99.0, 1000.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == {"1.0": 2, "10.0": 3, "100.0": 4, "+Inf": 5}
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(1105.5)

    def test_value_on_bucket_boundary_counts_into_that_bucket(self):
        hist = Histogram("h", buckets=(10.0,))
        hist.observe(10.0)
        assert hist.snapshot()["buckets"]["10.0"] == 1

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(10.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))

    def test_default_buckets_are_seconds_scale(self):
        hist = MetricsRegistry().histogram("seconds")
        assert tuple(hist.buckets) == DEFAULT_BUCKETS


class TestRegistry:
    def test_name_collision_across_kinds_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_counter_values_strips_prefix(self):
        reg = MetricsRegistry()
        reg.counter("engine.phase.golden.seconds").inc(1.5)
        reg.counter("engine.phase.inject.seconds").inc(2.5)
        reg.counter("other").inc()
        values = reg.counter_values("engine.phase.")
        assert values == {"golden.seconds": 1.5, "inject.seconds": 2.5}

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2.0}
        assert snap["gauges"] == {"g": 1.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_render_json_is_valid_json(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        doc = json.loads(reg.render_json())
        assert doc["counters"]["c"] == 1.0

    def test_render_text_is_prometheus_style(self):
        reg = MetricsRegistry()
        reg.counter("runs").inc(3)
        reg.gauge("depth").set(2)
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        text = reg.render_text()
        assert "runs 3\n" in text
        assert "depth 2\n" in text
        assert 'lat_bucket{le="1.0"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
