"""Tracer tests: span nesting, JSONL round-trip, cross-process ingestion."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullTracer,
    Tracer,
    load_jsonl,
    load_trace,
    phase_durations,
    spans,
)


class TestSpans:
    def test_span_records_name_and_duration(self):
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        with tracer.span("work", tag="x"):
            pass
        [event] = sink.events
        assert event["type"] == "span"
        assert event["name"] == "work"
        assert event["attrs"] == {"tag": "x"}
        assert event["end"] >= event["start"]
        assert event["duration"] == pytest.approx(event["end"] - event["start"])

    def test_nesting_sets_parent_ids(self):
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        by_name = {e["name"]: e for e in sink.events}
        outer = by_name["outer"]
        assert outer["parent_id"] is None
        assert by_name["inner"]["parent_id"] == outer["span_id"]
        assert by_name["sibling"]["parent_id"] == outer["span_id"]
        # children finish (and are emitted) before their parent
        names = [e["name"] for e in sink.events]
        assert names.index("inner") < names.index("outer")

    def test_timestamps_are_monotonic_from_tracer_epoch(self):
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        a, b = sink.events
        assert 0 <= a["start"] <= a["end"] <= b["start"] <= b["end"]

    def test_events_attach_to_innermost_span(self):
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("ping", n=1)
        by_name = {e["name"]: e for e in sink.events}
        assert by_name["ping"]["type"] == "event"
        assert by_name["ping"]["parent_id"] == by_name["inner"]["span_id"]
        assert by_name["ping"]["attrs"] == {"n": 1}

    def test_exception_still_finishes_span(self):
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [e["name"] for e in sink.events] == ["doomed"]
        assert tracer.current_span is None


class TestJsonlRoundTrip:
    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=JsonlSink(path))
        with tracer.span("phase", k=2):
            tracer.event("hit", index=0)
        tracer.close()
        events = load_jsonl(path)
        assert [e["type"] for e in events] == ["event", "span"]
        # every line is standalone JSON
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_load_trace_accepts_path_and_list(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = Tracer(sink=JsonlSink(path))
        with tracer.span("golden"):
            pass
        tracer.close()
        from_path = load_trace(path)
        assert load_trace(from_path) == from_path
        assert phase_durations(from_path)["golden"] > 0


class TestIngest:
    def _worker_events(self, n=1):
        """Simulate a worker producing a buffered trace."""
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        for _ in range(n):
            with tracer.span("run"):
                tracer.event("tick")
        return sink.events

    def test_ingest_remaps_ids_and_reparents(self):
        sink = MemorySink()
        parent = Tracer(sink=sink)
        with parent.span("inject"):
            parent_id = parent.current_span_id
            parent.ingest(self._worker_events())
        by_name = {e["name"]: e for e in sink.events}
        run = by_name["run"]
        inject = by_name["inject"]
        assert run["parent_id"] == parent_id == inject["span_id"]
        assert by_name["tick"]["parent_id"] == run["span_id"]
        assert run["span_id"] != inject["span_id"]

    def test_ingest_keeps_ids_unique_across_batches(self):
        sink = MemorySink()
        parent = Tracer(sink=sink)
        with parent.span("inject"):
            parent.ingest(self._worker_events())
            parent.ingest(self._worker_events())
        span_ids = [e["span_id"] for e in sink.events if e["type"] == "span"]
        assert len(span_ids) == len(set(span_ids))

    def test_ingested_timestamps_fit_the_parent_timeline(self):
        sink = MemorySink()
        parent = Tracer(sink=sink)
        with parent.span("inject"):
            parent.ingest(self._worker_events())
        by_name = {e["name"]: e for e in sink.events}
        assert by_name["run"]["end"] <= by_name["inject"]["end"]
        assert by_name["run"]["start"] >= 0

    def test_ingest_empty_is_noop(self):
        sink = MemorySink()
        parent = Tracer(sink=sink)
        parent.ingest([])
        assert sink.events == []


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("anything", x=1) as span:
            NULL_TRACER.event("ignored")
        assert span is None
        assert not NULL_TRACER.enabled

    def test_null_tracer_is_reusable_and_nestable(self):
        tracer = NullTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass


class TestSpanHelpers:
    def test_spans_filters_by_name(self):
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        with tracer.span("golden"):
            pass
        with tracer.span("inject"):
            tracer.event("injection")
        assert [s["name"] for s in spans(sink.events)] == ["golden", "inject"]
        assert len(spans(sink.events, "inject")) == 1

    def test_phase_durations_sums_repeated_spans(self):
        sink = MemorySink()
        tracer = Tracer(sink=sink)
        for _ in range(3):
            with tracer.span("inject"):
                pass
        durations = phase_durations(sink.events)
        assert set(durations) == {"inject"}
        total = sum(s["duration"] for s in spans(sink.events, "inject"))
        assert durations["inject"] == pytest.approx(total)
