"""Engine instrumentation tests: phase spans, injection events, metrics.

The acceptance property for the observability layer: a campaign trace's
phase spans cover golden/profile/select/inject, and its per-injection
events sum exactly to the campaign's OutcomeTally — serial and parallel.
"""

import pytest

from repro.core.campaign import CampaignConfig
from repro.core.engine import CampaignEngine, ParallelExecutor
from repro.core.report import phase_breakdown, tally_from_trace
from repro.core.store import CampaignStore
from repro.obs import (
    PHASE_SPANS,
    MemorySink,
    MetricsRegistry,
    Tracer,
    injection_events,
    spans,
)

WORKLOAD = "360.ilbdc"


def _traced_engine(tmp_path=None, executor=None, store=None, injections=4):
    sink = MemorySink()
    engine = CampaignEngine(
        WORKLOAD,
        CampaignConfig(num_transient=injections, seed=7),
        executor=executor,
        store=store,
        tracer=Tracer(sink=sink),
        metrics=MetricsRegistry(),
    )
    return engine, sink


class TestPhaseSpans:
    def test_campaign_trace_covers_all_phases(self):
        engine, sink = _traced_engine()
        engine.run_transient()
        durations = phase_breakdown(sink.events)
        assert set(PHASE_SPANS) <= set(durations)
        assert all(seconds > 0 for seconds in durations.values())

    def test_run_spans_nest_under_phases(self):
        engine, sink = _traced_engine(injections=2)
        engine.run_transient()
        by_id = {s["span_id"]: s for s in spans(sink.events)}
        runs = spans(sink.events, "run")
        # golden + profile + 2 injections
        assert len(runs) == 4
        parents = {by_id[r["parent_id"]]["name"] for r in runs}
        assert parents == {"golden", "profile", "inject"}

    def test_phase_spans_match_engine_metrics(self):
        engine, sink = _traced_engine(injections=2)
        engine.run_transient()
        durations = phase_breakdown(sink.events)
        for phase, seconds in engine.metrics.phase_seconds.items():
            # the span covers the phase (the metric is timed inside it)
            assert durations[phase] >= seconds * 0.5


class TestInjectionEvents:
    def test_events_sum_to_tally_serial(self):
        engine, sink = _traced_engine(injections=5)
        result = engine.run_transient()
        rebuilt = tally_from_trace(sink.events)
        assert rebuilt.total == result.tally.total == 5
        assert rebuilt.counts == result.tally.counts
        assert rebuilt.potential_due == result.tally.potential_due

    def test_event_attrs_carry_params_and_outcome(self):
        engine, sink = _traced_engine(injections=2)
        result = engine.run_transient()
        events = injection_events(sink.events)
        assert len(events) == 2
        for event, item in zip(
            sorted(events, key=lambda e: e["attrs"]["index"]), result.results
        ):
            attrs = event["attrs"]
            assert attrs["kind"] == "transient"
            assert attrs["resumed"] is False
            assert attrs["outcome"] == item.outcome.outcome.value
            assert attrs["symptom"] == item.outcome.symptom
            assert attrs["instructions"] == item.instructions
            assert attrs["kernel"] == item.params.kernel_name
            assert attrs["instruction_count"] == item.params.instruction_count
            assert attrs["injected"] == item.record.injected

    def test_resumed_injections_still_emit_events(self, tmp_path):
        first, _ = _traced_engine(store=CampaignStore(tmp_path), injections=3)
        expected = first.run_transient()

        resumed, sink = _traced_engine(store=CampaignStore(tmp_path), injections=3)
        result = resumed.run_transient()
        events = injection_events(sink.events)
        assert len(events) == 3
        assert all(e["attrs"]["resumed"] for e in events)
        rebuilt = tally_from_trace(sink.events)
        assert rebuilt.counts == expected.tally.counts == result.tally.counts

    @pytest.mark.slow
    def test_events_sum_to_tally_parallel(self):
        engine, sink = _traced_engine(
            executor=ParallelExecutor(max_workers=2, chunksize=2), injections=4
        )
        result = engine.run_transient()
        rebuilt = tally_from_trace(sink.events)
        assert rebuilt.total == result.tally.total == 4
        assert rebuilt.counts == result.tally.counts

    @pytest.mark.slow
    def test_worker_run_spans_are_forwarded(self):
        engine, sink = _traced_engine(
            executor=ParallelExecutor(max_workers=2), injections=3
        )
        engine.run_transient()
        runs = spans(sink.events, "run")
        assert len(runs) == 5  # golden + profile + 3 worker runs
        by_id = {s["span_id"]: s for s in spans(sink.events)}
        inject_span = spans(sink.events, "inject")[0]
        worker_runs = [
            r for r in runs if by_id[r["parent_id"]]["name"] == "inject"
        ]
        assert len(worker_runs) == 3
        assert all(r["end"] <= inject_span["end"] for r in worker_runs)


class TestEngineMetrics:
    def test_registry_collects_engine_and_gpusim_metrics(self):
        engine, _ = _traced_engine(injections=3)
        engine.run_transient()
        snap = engine.registry.snapshot()
        assert snap["counters"]["sandbox.runs"] == 5  # golden+profile+3
        assert snap["counters"]["gpusim.instructions_retired"] > 0
        assert snap["counters"]["gpusim.warps_launched"] > 0
        assert snap["gauges"]["gpusim.divergence_depth_high_water"] >= 1
        assert snap["counters"]["engine.injections.done"] == 3
        assert snap["histograms"]["campaign.injection.instructions"]["count"] == 3
        outcome_total = sum(
            value
            for name, value in snap["counters"].items()
            if name.startswith("campaign.outcome.")
            and name != "campaign.outcome.potential_due"
        )
        assert outcome_total == 3

    def test_metrics_shim_reads_registry(self):
        engine, _ = _traced_engine(injections=2)
        engine.run_transient()
        metrics = engine.metrics
        assert metrics.injections_done == 2
        assert metrics.injections_total == 2
        assert metrics.injections_loaded == 0
        assert set(metrics.phase_seconds) == {
            "golden", "replay", "profile", "select", "inject",
        }
        assert metrics.injections_per_second > 0
        assert "inj/s" in metrics.summary()

    def test_tracing_disabled_emits_nothing(self):
        engine = CampaignEngine(
            WORKLOAD, CampaignConfig(num_transient=2, seed=7)
        )
        result = engine.run_transient()
        assert len(result.results) == 2
        # the default tracer is the shared NullTracer
        from repro.obs import NULL_TRACER

        assert engine.tracer is NULL_TRACER
